//! Search vertices: partial schedules plus remaining work.
//!
//! A vertex `v` of the scheduling graph (§4.3) carries the unassigned
//! queries `v_u` and the partial schedule `v_s`. Under the paper's graph
//! reduction, placements only ever target the most recently rented VM, so a
//! vertex does not need the whole partial schedule — only the *last* VM's
//! composition (everything older is immutable and its cost already paid on
//! the path) plus whatever the performance goal needs to price future
//! placements (the [`PenaltyTracker`]).

use wisedb_core::{
    Millis, Money, PenaltyDigest, PenaltyTracker, PerformanceGoal, TemplateId, VmTypeId,
    WorkloadSpec,
};

use crate::decision::Decision;

/// The most recently rented VM within a partial schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LastVm {
    /// Its VM type.
    pub vm_type: VmTypeId,
    /// Templates queued on it, in placement order.
    pub queue: Vec<TemplateId>,
    /// Total execution time of the queue — the *wait time* a newly placed
    /// query would experience (the `wait-time` feature of §4.4).
    pub wait: Millis,
    /// How many leading queue entries were already committed before this
    /// search began (online scheduling seeds the open VM, §6.3). The
    /// canonical-SPT reduction must not let committed work constrain the
    /// ordering of *new* placements.
    pub seeded: usize,
}

impl LastVm {
    fn new(vm_type: VmTypeId) -> Self {
        LastVm {
            vm_type,
            queue: Vec::new(),
            wait: Millis::ZERO,
            seeded: 0,
        }
    }

    /// An open VM carried over from a previous scheduling round: its queue
    /// is fixed history, not reorderable by this search.
    pub fn seeded(vm_type: VmTypeId, queue: Vec<TemplateId>, wait: Millis) -> Self {
        let seeded = queue.len();
        LastVm {
            vm_type,
            queue,
            wait,
            seeded,
        }
    }

    /// Per-template counts of the queue, sized to `num_templates`.
    pub fn queue_counts(&self, num_templates: usize) -> Vec<u16> {
        let mut counts = vec![0u16; num_templates];
        for t in &self.queue {
            if let Some(c) = counts.get_mut(t.index()) {
                *c += 1;
            }
        }
        counts
    }
}

/// A vertex of the (reduced) scheduling graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// Unassigned instance count per template (`v_u`).
    pub unassigned: Vec<u16>,
    /// The most recently rented VM, if any. `None` only at the start vertex.
    pub last_vm: Option<LastVm>,
    /// Incremental penalty state for the goal.
    pub tracker: PenaltyTracker,
    /// Number of VMs rented so far (for reporting; not part of the key).
    pub vms_rented: u32,
}

impl SearchState {
    /// The start vertex: everything unassigned, nothing rented.
    pub fn initial(unassigned: Vec<u16>, goal: &PerformanceGoal) -> Self {
        SearchState {
            unassigned,
            last_vm: None,
            tracker: goal.new_tracker(),
            vms_rented: 0,
        }
    }

    /// A goal vertex has no unassigned queries.
    pub fn is_goal(&self) -> bool {
        self.unassigned.iter().all(|&c| c == 0)
    }

    /// Total number of unassigned queries.
    pub fn remaining(&self) -> u32 {
        self.unassigned.iter().map(|&c| c as u32).sum()
    }

    /// Whether `decision` labels an edge out of this vertex in the
    /// *reduced* graph (§4.3): placements need a supporting last VM and an
    /// unassigned instance; a start-up edge requires the last VM to be
    /// non-empty (or no VM at all — the mandatory first decision).
    pub fn is_valid(&self, spec: &WorkloadSpec, decision: Decision) -> bool {
        match decision {
            Decision::CreateVm(v) => {
                if v.index() >= spec.num_vm_types() {
                    return false;
                }
                match &self.last_vm {
                    None => true,
                    Some(last) => !last.queue.is_empty(),
                }
            }
            Decision::Place(t) => {
                if self
                    .unassigned
                    .get(t.index())
                    .map(|&c| c == 0)
                    .unwrap_or(true)
                {
                    return false;
                }
                match &self.last_vm {
                    None => false,
                    Some(last) => spec.latency(t, last.vm_type).is_some(),
                }
            }
        }
    }

    /// The weight of the edge labelled `decision` — Eq. 2 for placements
    /// (`l(q,i) * f_r + Δpenalty`), `f_s` for start-ups — without mutating
    /// this state. Returns `None` for invalid decisions.
    pub fn edge_weight(
        &self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        decision: Decision,
    ) -> Option<Money> {
        if !self.is_valid(spec, decision) {
            return None;
        }
        match decision {
            Decision::CreateVm(v) => Some(spec.vm_type(v).ok()?.startup_cost),
            Decision::Place(t) => {
                let last = self.last_vm.as_ref()?;
                let exec = spec.latency(t, last.vm_type)?;
                let runtime = spec.vm_type(last.vm_type).ok()?.runtime_cost(exec);
                let completion = last.wait + exec;
                let mut tracker = self.tracker.clone();
                let delta = tracker.push(goal, t, completion);
                Some(runtime + delta)
            }
        }
    }

    /// Applies `decision`, returning the successor state and edge weight.
    /// Returns `None` for invalid decisions.
    pub fn apply(
        &self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        decision: Decision,
    ) -> Option<(SearchState, Money)> {
        if !self.is_valid(spec, decision) {
            return None;
        }
        let mut next = self.clone();
        let weight = match decision {
            Decision::CreateVm(v) => {
                next.last_vm = Some(LastVm::new(v));
                next.vms_rented += 1;
                spec.vm_type(v).ok()?.startup_cost
            }
            Decision::Place(t) => {
                let last = next.last_vm.as_mut()?;
                let exec = spec.latency(t, last.vm_type)?;
                let runtime = spec.vm_type(last.vm_type).ok()?.runtime_cost(exec);
                last.queue.push(t);
                last.wait += exec;
                let completion = last.wait;
                next.unassigned[t.index()] -= 1;
                let delta = next.tracker.push(goal, t, completion);
                runtime + delta
            }
        };
        Some((next, weight))
    }

    /// All decisions labelling out-edges of this vertex in the reduced
    /// graph. Start-up edges are additionally pruned to VM types that can
    /// process at least one remaining template (renting anything else could
    /// never reach a goal vertex without a further, wasteful start-up).
    pub fn successors(&self, spec: &WorkloadSpec) -> Vec<Decision> {
        let mut out = Vec::new();
        for t in spec.template_ids() {
            if self.is_valid(spec, Decision::Place(t)) {
                out.push(Decision::Place(t));
            }
        }
        let can_create = match &self.last_vm {
            None => true,
            Some(last) => !last.queue.is_empty(),
        };
        if can_create && self.remaining() > 0 {
            for v in spec.vm_type_ids() {
                let useful = spec
                    .template_ids()
                    .any(|t| self.unassigned[t.index()] > 0 && spec.latency(t, v).is_some());
                if useful {
                    out.push(Decision::CreateVm(v));
                }
            }
        }
        out
    }

    /// Canonical dedup key. Two vertices with equal keys have identical
    /// future costs, so only the cheaper needs expanding:
    ///
    /// * remaining work (`unassigned`) matches;
    /// * the open VM prices future placements identically — that requires
    ///   only its **type** and **wait time** (penalty deltas see the wait,
    ///   never the queue's composition) plus the **last-placed template**,
    ///   which gates placements under the canonical-SPT reduction;
    /// * the penalty digest captures everything the goal can still
    ///   distinguish about the past.
    ///
    /// Collapsing the open VM to `(type, wait, tail)` rather than its full
    /// composition merges the exponentially many ways of reaching the same
    /// backlog — the difference between 30-query searches finishing in
    /// thousands of expansions versus millions.
    pub fn key(&self, num_templates: usize) -> StateKey {
        let _ = num_templates;
        StateKey {
            unassigned: self.unassigned.clone(),
            last_vm: self
                .last_vm
                .as_ref()
                .map(|l| (l.vm_type.0, l.wait.as_millis(), l.queue.last().map(|t| t.0))),
            digest: self.tracker.digest(),
        }
    }
}

/// Hashable identity of a search vertex; see [`SearchState::key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey {
    unassigned: Vec<u16>,
    last_vm: Option<(u32, u64, Option<u32>)>,
    digest: PenaltyDigest,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{PenaltyRate, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn goal() -> PerformanceGoal {
        PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    #[test]
    fn start_vertex_must_rent_first() {
        let s = SearchState::initial(vec![1, 2], &goal());
        assert!(!s.is_goal());
        assert_eq!(s.remaining(), 3);
        let succ = s.successors(&spec());
        assert_eq!(succ, vec![Decision::CreateVm(VmTypeId(0))]);
    }

    #[test]
    fn reduction_blocks_second_empty_vm() {
        let s = SearchState::initial(vec![1, 1], &goal());
        let (s, w) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        assert!(w.approx_eq(Money::from_dollars(0.0008), 1e-12));
        // Last VM is empty: no second start-up edge, placements only.
        let succ = s.successors(&spec());
        assert!(succ.iter().all(|d| matches!(d, Decision::Place(_))));
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn placement_updates_wait_and_counts() {
        let s = SearchState::initial(vec![1, 1], &goal());
        let (s, _) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        let (s, w) = s
            .apply(&spec(), &goal(), Decision::Place(TemplateId(0)))
            .unwrap();
        // 2 minutes of t2.medium time, no violation (2m <= 3m deadline).
        assert!(w.approx_eq(Money::from_dollars(0.052 * 2.0 / 60.0), 1e-9));
        let last = s.last_vm.as_ref().unwrap();
        assert_eq!(last.wait, Millis::from_mins(2));
        assert_eq!(s.unassigned, vec![0, 1]);

        // Placing T2 now completes at 3m, 2m past its 1m deadline: the
        // edge carries the $1.20 penalty (Eq. 2).
        let w = s
            .edge_weight(&spec(), &goal(), Decision::Place(TemplateId(1)))
            .unwrap();
        let expected = Money::from_dollars(0.052 / 60.0 + 1.20);
        assert!(w.approx_eq(expected, 1e-9));
    }

    #[test]
    fn depleted_templates_are_invalid() {
        let s = SearchState::initial(vec![0, 1], &goal());
        let (s, _) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        assert!(!s.is_valid(&spec(), Decision::Place(TemplateId(0))));
        assert!(s.is_valid(&spec(), Decision::Place(TemplateId(1))));
        assert!(s
            .apply(&spec(), &goal(), Decision::Place(TemplateId(0)))
            .is_none());
    }

    #[test]
    fn unsupported_vm_types_not_offered() {
        let spec = WorkloadSpec::new(
            vec![wisedb_core::QueryTemplate {
                name: "medium-only".into(),
                latencies: vec![Some(Millis::from_mins(1)), None],
            }],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let s = SearchState::initial(vec![2], &goal);
        // Only the supporting type is offered at the start vertex.
        assert_eq!(s.successors(&spec), vec![Decision::CreateVm(VmTypeId(0))]);

        // On a small VM, the template cannot be placed.
        let (on_small, _) = s
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(1)))
            .unwrap();
        assert!(!on_small.is_valid(&spec, Decision::Place(TemplateId(0))));
    }

    #[test]
    fn keys_collapse_interior_queue_orderings() {
        let spec = spec();
        let goal = goal();
        let s0 = SearchState::initial(vec![1, 2], &goal);
        let (s0, _) = s0
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
            .unwrap();

        // Path A: T1, T2, T2. Path B: T2, T1, T2. Same multiset, same
        // tail — the different interior orderings paid different
        // penalties (already in g) but share every future option.
        let (a, _) = s0
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        let (a, _) = a
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (a, _) = a
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (b, _) = s0
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (b, _) = b
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        let (b, _) = b
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        assert_eq!(a.key(2), b.key(2));

        // Different tails (which gate canonical placements) stay distinct.
        let (c, _) = s0
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (c, _) = c
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (c, _) = c
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        assert_ne!(a.key(2), c.key(2));
    }

    #[test]
    fn goal_vertices_have_no_unassigned() {
        let goal = goal();
        let s = SearchState::initial(vec![0, 0], &goal);
        assert!(s.is_goal());
    }
}
