//! Admissible search heuristics.
//!
//! For *monotonically increasing* goals (per-query, max latency) the paper's
//! Eq. 3 heuristic applies: the cheapest conceivable processing cost of the
//! unassigned queries, pretending VMs were free. For non-monotone goals the
//! paper falls back to the null heuristic; we use a slightly stronger but
//! still admissible bound that accounts for the fact that future placements
//! can refund at most the penalty accumulated so far.

use wisedb_core::{Millis, Money, PenaltyTracker, PerformanceGoal, TemplateId, WorkloadSpec};

use crate::state::SearchState;

/// Precomputed per-template bounds: `min_i f_r(i) * l(t, i)` (the cheapest
/// way to process one instance) and `min_i l(t, i)` (the fastest possible
/// completion, which lower-bounds any future completion latency).
#[derive(Debug, Clone)]
pub struct HeuristicTable {
    cheapest: Vec<Money>,
    min_exec: Vec<Millis>,
    /// Template indices sorted ascending by `min_exec` (ties by index) —
    /// lets per-state bounds build sorted remaining-execution multisets
    /// without sorting anything at search time.
    exec_order: Vec<(u64, usize)>,
    min_startup: Money,
}

impl HeuristicTable {
    /// Builds the table for a specification.
    pub fn new(spec: &WorkloadSpec) -> Self {
        let cheapest = spec
            .template_ids()
            .map(|t| spec.cheapest_runtime_cost(t).unwrap_or(Money::ZERO))
            .collect();
        let min_exec: Vec<Millis> = spec
            .templates()
            .iter()
            .map(|t| t.min_latency().unwrap_or(Millis::ZERO))
            .collect();
        let mut exec_order: Vec<(u64, usize)> = min_exec
            .iter()
            .enumerate()
            .map(|(t, &e)| (e.as_millis(), t))
            .collect();
        exec_order.sort_unstable();
        let min_startup = spec
            .vm_types()
            .iter()
            .map(|v| v.startup_cost)
            .min_by(Money::total_cmp)
            .unwrap_or(Money::ZERO);
        HeuristicTable {
            cheapest,
            min_exec,
            exec_order,
            min_startup,
        }
    }

    /// Cheapest processing cost of one instance of `t`.
    pub fn cheapest(&self, t: TemplateId) -> Money {
        self.cheapest.get(t.index()).copied().unwrap_or(Money::ZERO)
    }

    /// Sum of cheapest processing costs over all unassigned queries:
    /// Eq. 3's `h(v)`.
    pub fn remaining_runtime_lower_bound(&self, state: &SearchState) -> Money {
        state
            .unassigned
            .iter()
            .zip(&self.cheapest)
            .map(|(&count, &cost)| cost * count as f64)
            .sum()
    }

    /// The admissible heuristic for `goal` at `state`.
    ///
    /// * Monotone goals: future cost ≥ remaining runtime (Eq. 3), *plus* a
    ///   bin-packing bound on unavoidable start-up fees / overflow
    ///   penalties — see [`Self::startup_overflow_bound`]. The paper uses
    ///   Eq. 3 alone; the extra term is what keeps 30-query oracle
    ///   searches tractable, because without it every no-penalty prefix of
    ///   every schedule shares one enormous f-plateau.
    /// * Non-monotone goals: placements can *refund* penalty, so the paper
    ///   uses the null heuristic. We use a stronger admissible bound: the
    ///   future penalty deltas telescope to `p_final − p_current`, and
    ///   `p_final` is lower-bounded by a `P‖ΣC_j`-style packing argument —
    ///   remaining work must serialize onto however many machines the
    ///   schedule pays for, so completions are bounded by prefix sums of
    ///   the fastest executions (plus the open VM's queue wait), not bare
    ///   fastest executions; see [`Self::average_bound`] and
    ///   [`Self::percentile_bound`]. At a goal vertex the estimate is
    ///   exactly zero, which the optimality argument for inconsistent
    ///   heuristics relies on.
    pub fn estimate(&self, goal: &PerformanceGoal, state: &SearchState) -> Money {
        if state.is_goal() {
            return Money::ZERO;
        }
        let runtime = self.remaining_runtime_lower_bound(state);
        match goal {
            PerformanceGoal::MaxLatency { .. } | PerformanceGoal::PerQuery { .. } => {
                runtime + self.startup_overflow_bound(goal, state)
            }
            PerformanceGoal::AverageLatency { target, rate } => {
                let current = state.tracker.penalty(goal);
                runtime + self.average_bound(state, *target, *rate) - current
            }
            PerformanceGoal::Percentile {
                percent,
                deadline,
                rate,
            } => {
                let current = state.tracker.penalty(goal);
                runtime + self.percentile_bound(state, *percent, *deadline, *rate) - current
            }
        }
    }

    /// For average-latency goals: the cheapest conceivable combination of
    /// new-VM fees and mean-latency penalty.
    ///
    /// With `k` machines available, the minimum total completion time of
    /// jobs with execution times `e₁ ≥ e₂ ≥ …` is `Σ ⌈j/k⌉·e_j` (SPT on
    /// each machine, longest jobs first across machines — the classical
    /// `P‖ΣC_j` bound; queue offsets on the open VM only increase it). The
    /// final mean is therefore at least `(sum_so_far + ΣC_min(V+open)) /
    /// n_final`, giving a penalty floor per choice of `V` new VMs; minimize
    /// `f_min·V + penalty_floor(V)` over `V`.
    fn average_bound(
        &self,
        state: &SearchState,
        target: Millis,
        rate: wisedb_core::PenaltyRate,
    ) -> Money {
        let PenaltyTracker::Average { sum_ms, count } = &state.tracker else {
            return Money::ZERO;
        };
        // Remaining execution times, longest first (no sort: walk the
        // precomputed ascending exec order backwards).
        let mut execs: Vec<u64> = Vec::new();
        for &(ms, t) in self.exec_order.iter().rev() {
            let count = state.unassigned.get(t).copied().unwrap_or(0);
            for _ in 0..count {
                execs.push(ms);
            }
        }
        if execs.is_empty() {
            return Money::ZERO;
        }
        let m = execs.len();
        let n_final = *count + m as u64;
        let open = usize::from(state.last_vm.is_some());
        let mut best = Money::from_dollars(f64::INFINITY);
        for v in 0..=m {
            let machines = (v + open).max(1);
            // V new VMs are only "free" capacity if we pay their fee; with
            // no open VM at least one rental is mandatory.
            let paid_vms = if open == 0 { v.max(1) } else { v };
            let mut sum_c: u128 = *sum_ms;
            for (j, &e) in execs.iter().enumerate() {
                sum_c += (((j / machines) + 1) as u128) * e as u128;
            }
            let mean = Millis::from_millis((sum_c / n_final as u128) as u64);
            let penalty = rate.for_violation(mean.saturating_sub(target));
            let candidate = self.min_startup * paid_vms as f64 + penalty;
            if candidate < best {
                best = candidate;
            }
            if penalty == Money::ZERO {
                break; // adding VMs only raises the fee from here on
            }
        }
        best
    }

    /// For deadline goals: a lower bound on the start-up fees and overflow
    /// penalties any completion must still pay.
    ///
    /// Derivation: let `W` be the total remaining work at its *fastest*
    /// (`Σ min_exec`), `D` the most generous deadline among remaining
    /// templates, and `S = (D − wait)⁺` the penalty-free room left on the
    /// open VM. Any completion splits `W` across the open VM and `V` new
    /// VMs. On a VM whose queue sums to `Wᵢ`, the last query finishes at
    /// `Wᵢ` (+ wait), so penalties are at least `rate·(Wᵢ − D)⁺`; summing
    /// and using `(a−A)⁺ + (b−B)⁺ ≥ (a+b−A−B)⁺` gives penalties
    /// `≥ rate·(W − S − V·D)⁺`, while start-ups cost at least `f_min·V`.
    /// The bound is the minimum over `V ≥ 0` of that convex piecewise-
    /// linear function — evaluated at the two integers around
    /// `(W − S)/D`.
    fn startup_overflow_bound(&self, goal: &PerformanceGoal, state: &SearchState) -> Money {
        // Deadline classes d₁ < d₂ < … with Wₖ = fastest-possible work of
        // remaining queries whose deadline is ≤ dₖ. For each class, every
        // machine can absorb at most dₖ of that work penalty-free (its
        // last such query finishes no earlier than the class work placed
        // there), so with V new VMs the penalties are at least
        // `rate·maxₖ (Wₖ − Sₖ − V·dₖ)⁺`. Max-latency goals are the
        // single-class case.
        let rate = goal.rate();
        let mut classes: Vec<(Millis, u64)> = match goal {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                let mut work = 0u64;
                for (t, &count) in state.unassigned.iter().enumerate() {
                    work += self.min_exec[t].as_millis() * count as u64;
                }
                vec![(*deadline, work)]
            }
            PerformanceGoal::PerQuery { deadlines, .. } => {
                let mut per_deadline: Vec<(Millis, u64)> = state
                    .unassigned
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(t, &c)| {
                        (
                            deadlines.get(t).copied().unwrap_or(Millis::ZERO),
                            self.min_exec[t].as_millis() * c as u64,
                        )
                    })
                    .collect();
                per_deadline.sort_unstable();
                // Prefix-accumulate into nested classes.
                let mut acc = 0u64;
                let mut out: Vec<(Millis, u64)> = Vec::new();
                for (d, w) in per_deadline {
                    acc += w;
                    match out.last_mut() {
                        Some((last_d, last_w)) if *last_d == d => *last_w = acc,
                        _ => out.push((d, acc)),
                    }
                }
                out
            }
            _ => return Money::ZERO,
        };
        classes.retain(|&(_, w)| w > 0);
        if classes.is_empty() {
            return Money::ZERO;
        }
        let wait = state
            .last_vm
            .as_ref()
            .map(|l| l.wait)
            .unwrap_or(Millis::ZERO);
        let has_open = state.last_vm.is_some();
        let violation_at = |v: u64| -> Millis {
            let mut worst = Millis::ZERO;
            for &(d, w) in &classes {
                let slack = if has_open {
                    d.saturating_sub(wait).as_millis()
                } else {
                    0
                };
                let capacity = slack + d.as_millis() * v;
                let over = Millis::from_millis(w.saturating_sub(capacity));
                worst = worst.max(over);
            }
            worst
        };
        // `f(V) = fee·V + rate·violation(V)` is convex piecewise linear:
        // walk V upward until the violation term vanishes, tracking the
        // minimum. Zero deadlines never gain capacity from extra VMs, so
        // the walk is capped by total work over the smallest *positive*
        // deadline.
        let v_cap = classes
            .iter()
            .filter(|&&(d, _)| !d.is_zero())
            .map(|&(d, _)| classes.last().map(|&(_, w)| w).unwrap_or(0) / d.as_millis() + 1)
            .max()
            .unwrap_or(0);
        let mut best = Money::from_dollars(f64::INFINITY);
        for v in 0..=v_cap {
            let violation = violation_at(v);
            let candidate = self.min_startup * v as f64 + rate.for_violation(violation);
            if candidate < best {
                best = candidate;
            }
            if violation.is_zero() {
                break;
            }
        }
        // With no open VM and work remaining, at least one rental is
        // unavoidable regardless of deadlines.
        if !has_open {
            best = best.max(self.min_startup);
        }
        best
    }

    /// For percentile goals: the cheapest conceivable combination of
    /// new-VM fees and tail-latency penalty, anticipating queue
    /// serialization (`P‖ΣC_j`-style packing, as in
    /// [`Self::average_bound`]).
    ///
    /// Remaining queries cannot all finish at their fastest executions:
    /// with `V` new VMs plus the open one, `m = V + open` machines share
    /// the remaining work, and among the `j` earliest-finishing remaining
    /// queries some machine holds at least `⌈j/m⌉` of them (pigeonhole).
    /// That machine's last such query completes no earlier than the sum of
    /// the `⌈j/m⌉` smallest remaining executions `S(⌈j/m⌉)`, so the `j`-th
    /// smallest remaining completion is at least
    /// `c̃_j = max(e_(j), S(⌈j/m⌉) + offset)`, where `e_(j)` is the `j`-th
    /// smallest remaining execution and `offset` folds in the open VM's
    /// queue wait when everything must serialize behind it (`V = 0`). The
    /// final percentile is then at least the k-th order statistic of the
    /// completed digest merged with the `c̃` floors — computed by the same
    /// `O(buckets + r)` quantized-digest walk as before, never a sort.
    /// Minimizing `f_min·paid_VMs + penalty_floor(V)` over `V` stays
    /// admissible: any completion with `V` new VMs pays at least that fee
    /// and at least that penalty, and `c̃_j ≥ e_(j)` makes the floor no
    /// weaker than the old fastest-execution bound (`h_new ≥ h_old`).
    fn percentile_bound(
        &self,
        state: &SearchState,
        percent: f64,
        deadline: Millis,
        rate: wisedb_core::PenaltyRate,
    ) -> Money {
        let PenaltyTracker::Percentile { dist } = &state.tracker else {
            return Money::ZERO;
        };
        // Remaining executions, ascending (no sort: the precomputed order).
        let mut execs: Vec<u64> = Vec::new();
        for &(ms, t) in &self.exec_order {
            let count = state.unassigned.get(t).copied().unwrap_or(0);
            for _ in 0..count {
                execs.push(ms);
            }
        }
        let r = execs.len();
        let n = dist.len() + r as u64;
        if n == 0 {
            return Money::ZERO;
        }
        let k = wisedb_core::PercentileDigest::nearest_rank(percent, n);
        if r == 0 {
            let at = Millis::from_millis(dist.value_at_rank(k));
            return rate.for_violation(at.saturating_sub(deadline));
        }
        // Prefix sums: prefix[u-1] = S(u), the u smallest executions.
        let mut prefix: Vec<u64> = Vec::with_capacity(r);
        let mut acc = 0u64;
        for &e in &execs {
            acc += e;
            prefix.push(acc);
        }
        let open = usize::from(state.last_vm.is_some());
        let wait = state
            .last_vm
            .as_ref()
            .map(|l| l.wait.as_millis())
            .unwrap_or(0);
        let mut best = Money::from_dollars(f64::INFINITY);
        let mut floors: Vec<(u64, u32)> = Vec::with_capacity(r);
        for v in 0..=r {
            let machines = (v + open).max(1);
            // V new VMs are only "free" capacity if we pay their fee; with
            // no open VM at least one rental is mandatory.
            let paid_vms = if open == 0 { v.max(1) } else { v };
            // Only when nothing new is rented does every remaining query
            // queue behind the open VM's existing work.
            let offset = if v == 0 && open == 1 { wait } else { 0 };
            // c̃ is non-decreasing (max of two non-decreasing sequences),
            // so run-length encoding yields the strictly ascending buckets
            // `value_at_rank_merged` requires.
            floors.clear();
            for (j, &e) in execs.iter().enumerate() {
                let c = e.max(prefix[j / machines] + offset);
                match floors.last_mut() {
                    Some((val, count)) if *val == c => *count += 1,
                    _ => floors.push((c, 1)),
                }
            }
            let at = Millis::from_millis(dist.value_at_rank_merged(k, &floors));
            let penalty = rate.for_violation(at.saturating_sub(deadline));
            let candidate = self.min_startup * paid_vms as f64 + penalty;
            if candidate < best {
                best = candidate;
            }
            if penalty == Money::ZERO {
                break; // adding VMs only raises the fee from here on
            }
            if machines >= r && offset == 0 {
                // The floor has degenerated to bare fastest executions;
                // more machines change nothing but the fee. (With a queue
                // offset in play — `v == 0` behind a loaded open VM — the
                // next iteration drops the offset, so the floor can still
                // fall and the break would overstate the minimum.)
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;
    use wisedb_core::{Millis, PenaltyRate, VmType, VmTypeId};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(
            vec![
                wisedb_core::QueryTemplate::uniform(
                    "T1",
                    vec![Millis::from_mins(2), Millis::from_mins(4)],
                ),
                wisedb_core::QueryTemplate::uniform(
                    "T2",
                    vec![Millis::from_mins(1), Millis::from_mins(1)],
                ),
            ],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap()
    }

    #[test]
    fn cheapest_picks_best_vm_type() {
        let table = HeuristicTable::new(&spec());
        // T1: medium 2m*0.052/60 vs small 4m*0.026/60 — equal; either is fine.
        let t1 = table.cheapest(TemplateId(0));
        assert!(t1.approx_eq(Money::from_dollars(0.052 * 2.0 / 60.0), 1e-12));
        // T2: small wins (1m at half rate).
        let t2 = table.cheapest(TemplateId(1));
        assert!(t2.approx_eq(Money::from_dollars(0.026 / 60.0), 1e-12));
    }

    #[test]
    fn monotone_estimate_is_runtime_plus_unavoidable_startups() {
        let spec = spec();
        let goal = wisedb_core::PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(10),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let table = HeuristicTable::new(&spec);
        // No VM yet: 5 minutes of work fits one 10-minute VM, so exactly
        // one start-up fee is unavoidable on top of Eq. 3's runtime sum.
        let state = SearchState::initial(vec![2, 1], &goal);
        let runtime = table.cheapest(TemplateId(0)) * 2.0 + table.cheapest(TemplateId(1));
        let expected = runtime + Money::from_dollars(0.0008);
        assert!(table.estimate(&goal, &state).approx_eq(expected, 1e-12));
    }

    #[test]
    fn overflow_bound_anticipates_extra_vms() {
        // Deadline 2 minutes, six 1-minute queries, empty cluster: at most
        // 2 queries per VM, so ≥ 3 start-ups are unavoidable.
        let spec = WorkloadSpec::single_vm(
            vec![("T", Millis::from_mins(1))],
            wisedb_core::VmType::t2_medium(),
        )
        .unwrap();
        let goal = wisedb_core::PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let table = HeuristicTable::new(&spec);
        let state = SearchState::initial(vec![6], &goal);
        let runtime = table.cheapest(TemplateId(0)) * 6.0;
        let h = table.estimate(&goal, &state);
        let three_startups = Money::from_dollars(3.0 * 0.0008);
        assert!(
            h.approx_eq(runtime + three_startups, 1e-9),
            "h = {h}, expected runtime + 3 startups"
        );
    }

    #[test]
    fn estimate_is_zero_at_goal_vertices() {
        let spec = spec();
        let goal = wisedb_core::PerformanceGoal::AverageLatency {
            target: Millis::from_mins(1),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let table = HeuristicTable::new(&spec);
        let state = SearchState::initial(vec![0, 2], &goal);
        let (state, _) = state
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        // Place T2 twice: second completes at 2m, mean = 1.5m, 30s over.
        let (state, _) = state
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (state, _) = state
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        assert!(state.tracker.penalty(&goal) > Money::ZERO);
        // Goal vertex: nothing remains, so the true remaining cost is 0 and
        // the heuristic must say exactly that.
        assert_eq!(table.estimate(&goal, &state), Money::ZERO);
    }

    /// The bucket-merge queue-wait percentile bound equals a materialized
    /// sort-every-candidate reference on states reached by real decision
    /// sequences, and it never drops below the historical
    /// fastest-executions-only floor (`h_new ≥ h_old`).
    #[test]
    fn percentile_estimate_matches_packing_reference() {
        let spec = spec();
        let deadline = Millis::from_secs(100);
        let rate = PenaltyRate::CENT_PER_SECOND;
        let goal = wisedb_core::PerformanceGoal::Percentile {
            percent: 75.0,
            deadline,
            rate,
        };
        let table = HeuristicTable::new(&spec);
        let min_startup = spec
            .vm_types()
            .iter()
            .map(|v| v.startup_cost)
            .min_by(Money::total_cmp)
            .unwrap();
        // Walk a few placement sequences, checking the estimate at every
        // intermediate state.
        for placements in [vec![0usize, 1, 1], vec![1, 1, 0, 0], vec![0, 0, 1], vec![1]] {
            let mut state = SearchState::initial(vec![3, 4], &goal);
            let (s, _) = state
                .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
                .unwrap();
            state = s;
            for &t in &placements {
                let (s, _) = state
                    .apply(&spec, &goal, Decision::Place(TemplateId(t as u32)))
                    .unwrap();
                state = s;

                let wisedb_core::PenaltyTracker::Percentile { dist } = &state.tracker else {
                    unreachable!()
                };
                let completed: Vec<u64> = dist
                    .buckets()
                    .flat_map(|(v, c)| std::iter::repeat(v).take(c as usize))
                    .collect();
                let mut execs: Vec<u64> = Vec::new();
                for (t, &remaining) in state.unassigned.iter().enumerate() {
                    for _ in 0..remaining {
                        execs.push(spec.templates()[t].min_latency().unwrap().as_millis());
                    }
                }
                execs.sort_unstable();
                let r = execs.len();
                let open = usize::from(state.last_vm.is_some());
                let wait = state
                    .last_vm
                    .as_ref()
                    .map(|l| l.wait.as_millis())
                    .unwrap_or(0);
                let percentile_of = |mut merged: Vec<u64>| -> Money {
                    merged.sort_unstable();
                    let n = merged.len();
                    let k = (((75.0 / 100.0) * n as f64).ceil() as usize).clamp(1, n);
                    rate.for_violation(Millis::from_millis(merged[k - 1]).saturating_sub(deadline))
                };

                // Old bound: every remaining query at its fastest execution,
                // no fees — the floor the new bound must dominate.
                let mut naive = completed.clone();
                naive.extend_from_slice(&execs);
                let old_floor = percentile_of(naive);

                // New reference: min over V new VMs of fee + packed-floor
                // penalty, with per-rank completions
                // `max(e_(j), S(⌈j/m⌉) + offset)` materialized and sorted.
                let mut best = Money::from_dollars(f64::INFINITY);
                for v in 0..=r {
                    let machines = (v + open).max(1);
                    let paid_vms = if open == 0 { v.max(1) } else { v };
                    let offset = if v == 0 && open == 1 { wait } else { 0 };
                    let mut merged = completed.clone();
                    for (j, &e) in execs.iter().enumerate() {
                        let s: u64 = execs[..(j / machines) + 1].iter().sum();
                        merged.push(e.max(s + offset));
                    }
                    let candidate = min_startup * paid_vms as f64 + percentile_of(merged);
                    if candidate < best {
                        best = candidate;
                    }
                }

                let runtime = table.remaining_runtime_lower_bound(&state);
                let current = state.tracker.penalty(&goal);
                let expected = runtime + best - current;
                let estimate = table.estimate(&goal, &state);
                assert!(
                    estimate.approx_eq(expected, 1e-12),
                    "after {placements:?}: estimate {estimate} vs reference {expected}"
                );
                let floor = runtime + old_floor - current;
                assert!(
                    estimate >= floor - Money::from_dollars(1e-12),
                    "after {placements:?}: estimate {estimate} below old floor {floor}"
                );
            }
        }
    }

    #[test]
    fn average_estimate_anticipates_unavoidable_penalty() {
        let spec = spec();
        // Impossible target: even the fastest executions violate it.
        let goal = wisedb_core::PerformanceGoal::AverageLatency {
            target: Millis::from_secs(30),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let table = HeuristicTable::new(&spec);
        let state = SearchState::initial(vec![0, 1], &goal);
        // One T2 remains; its fastest execution is 1m, so the final mean is
        // at least 1m — 30s over target — on top of its runtime cost and
        // the one unavoidable VM rental fee.
        let h = table.estimate(&goal, &state);
        let runtime = table.cheapest(TemplateId(1));
        let unavoidable = Money::from_dollars(0.30) + Money::from_dollars(0.0008);
        assert!(
            h.approx_eq(runtime + unavoidable, 1e-9),
            "h = {h}, expected {}",
            runtime + unavoidable
        );
    }
}
