//! Scheduling decisions: the edge labels of the scheduling graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use wisedb_core::{TemplateId, VmTypeId};

/// One step of schedule construction (§4.3): either rent a new VM or place
/// an instance of a template on the most recently rented VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Rent a new VM of the given type (a *start-up edge*).
    CreateVm(VmTypeId),
    /// Place an unassigned instance of the given template on the most
    /// recently rented VM (a *placement edge*).
    Place(TemplateId),
}

impl Decision {
    /// Dense label index for classifiers: placements first (one per
    /// template), then VM creations (one per type). The label domain size is
    /// `num_templates + num_vm_types`, matching §4.4's observation that this
    /// is the decision domain.
    pub fn label(self, num_templates: usize) -> usize {
        match self {
            Decision::Place(t) => t.index(),
            Decision::CreateVm(v) => num_templates + v.index(),
        }
    }

    /// Inverse of [`Decision::label`].
    pub fn from_label(label: usize, num_templates: usize) -> Decision {
        if label < num_templates {
            Decision::Place(TemplateId(label as u32))
        } else {
            Decision::CreateVm(VmTypeId((label - num_templates) as u32))
        }
    }

    /// Total number of distinct labels.
    pub fn label_count(num_templates: usize, num_vm_types: usize) -> usize {
        num_templates + num_vm_types
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::CreateVm(v) => write!(f, "new-{v}"),
            Decision::Place(t) => write!(f, "assign-{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_trip() {
        let nt = 5;
        for label in 0..Decision::label_count(nt, 3) {
            let d = Decision::from_label(label, nt);
            assert_eq!(d.label(nt), label);
        }
        assert_eq!(Decision::Place(TemplateId(2)).label(nt), 2);
        assert_eq!(Decision::CreateVm(VmTypeId(1)).label(nt), 6);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(Decision::Place(TemplateId(0)).to_string(), "assign-T1");
        assert_eq!(Decision::CreateVm(VmTypeId(0)).to_string(), "new-VM-type0");
    }
}
