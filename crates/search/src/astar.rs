//! A* search for minimum-cost schedules (§4.3).
//!
//! A path from the start vertex (everything unassigned) to any goal vertex
//! (nothing unassigned) spells out a complete schedule, and its weight is
//! exactly `cost(R, S)` — so the shortest path *is* the optimal schedule.
//!
//! The searcher tolerates negative placement edges (average-latency goals can
//! refund penalty when a fast query lowers the mean) by allowing node
//! reopening; because every placement consumes a query and start-ups require
//! a non-empty previous VM, the graph is a finite DAG and the search always
//! terminates. With an admissible heuristic, the first goal vertex *popped*
//! is optimal even when the heuristic is inconsistent.
//!
//! ## Interned hot path
//!
//! Every distinct vertex is interned to a dense `u32` id on first sight, so
//! the per-expansion tables — best-known g, the cached heuristic value, and
//! the explored set — are flat `Vec`s indexed by id rather than hash maps
//! keyed by deep [`StateKey`]s. Combined with the structural sharing inside
//! [`SearchState`] (persistent queues, copy-on-write counts and penalty
//! distributions), expanding a node costs one key hash and O(successors)
//! small allocations instead of deep clones of the whole vertex. The
//! [`SearchStats::interned`] counter exposes the dedup-table size.

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use wisedb_core::{
    CoreResult, Money, PerformanceGoal, Schedule, VmInstance, Workload, WorkloadSpec,
};

use crate::canonical::CanonicalOrder;
use crate::decision::Decision;
use crate::heuristic::HeuristicTable;
use crate::state::{SearchState, StateKey};

/// Float slack when comparing path costs, in dollars.
const G_EPS: f64 = 1e-12;

/// Tunables for one search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum number of expansions before the search gives up and returns
    /// its incumbent (flagged non-optimal). Guards against pathological
    /// non-monotone instances; the paper-scale workloads stay far below it.
    pub node_limit: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            node_limit: 4_000_000,
        }
    }
}

/// Counters describing one search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices popped and expanded.
    pub expanded: u64,
    /// Successor states generated.
    pub generated: u64,
    /// Times a better path to an already-seen vertex was found.
    pub reopened: u64,
    /// Distinct vertices interned (allocated a dense id / key entry) during
    /// the search — the size of the dedup table, and the unit the interning
    /// refactor's allocation savings scale with.
    pub interned: u64,
    /// Whether the result is provably optimal (node limit not hit).
    pub optimal: bool,
}

/// One decision on the optimal path together with the vertex it was taken
/// from — the raw material of the training set (§4.4).
#[derive(Debug, Clone)]
pub struct DecisionStep {
    /// The vertex (partial schedule + remaining work) at decision time.
    pub state: SearchState,
    /// The decision the optimal path took there.
    pub decision: Decision,
}

/// The outcome of a search: the schedule, its cost, and the annotated path.
#[derive(Debug, Clone)]
pub struct OptimalSchedule {
    /// The minimum-cost complete schedule.
    pub schedule: Schedule,
    /// Its total cost `cost(R, S)`.
    pub cost: Money,
    /// The decisions along the optimal path, with their origin vertices.
    pub steps: Vec<DecisionStep>,
    /// Search counters.
    pub stats: SearchStats,
}

/// A decision sequence from an arbitrary initial vertex (no query-id
/// replay) — what online scheduling consumes.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Decisions in application order.
    pub decisions: Vec<Decision>,
    /// The decisions annotated with their origin vertices.
    pub steps: Vec<DecisionStep>,
    /// Cost of the planned continuation (from the initial vertex).
    pub cost: Money,
    /// Search counters.
    pub stats: SearchStats,
}

/// Extra per-vertex heuristic values (in dollars) layered on top of the base
/// heuristic — the mechanism behind adaptive A* (§5). Keys are Arc-backed
/// [`StateKey`]s, so storing one is reference bumps; the searcher consults
/// the memo at most once per *distinct* vertex (the per-id `h` cache
/// remembers the combined value for every regeneration).
#[derive(Debug, Clone, Default)]
pub struct HeuristicMemo {
    values: HashMap<StateKey, f64>,
}

impl HeuristicMemo {
    /// An empty memo.
    pub fn new() -> Self {
        HeuristicMemo::default()
    }

    /// Number of vertices with reuse information.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the memo holds no reuse information.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The memoized heuristic for `key`, if any.
    pub fn get(&self, key: &StateKey) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Records `h` for `key`, keeping the maximum of all observations
    /// (`max(h, h')` stays admissible when each input is).
    pub fn raise(&mut self, key: StateKey, h: f64) {
        let slot = self.values.entry(key).or_insert(f64::NEG_INFINITY);
        if h > *slot {
            *slot = h;
        }
    }
}

/// The g-values of every settled vertex of one search, in settle order —
/// what [`crate::adaptive::AdaptiveSearcher`] folds into its memo.
pub type ExploredStates = Vec<(StateKey, f64)>;

/// Dense state-id interner: each distinct [`StateKey`] gets a `u32` on
/// first sight. Keys are Arc-backed, so storing them twice (map + by-id
/// vector) costs reference bumps, not vector copies.
#[derive(Default)]
struct Interner {
    ids: HashMap<StateKey, u32>,
    keys: Vec<StateKey>,
}

impl Interner {
    /// Returns the id for `key`, allocating one if unseen.
    fn intern(&mut self, key: StateKey) -> u32 {
        let Interner { ids, keys } = self;
        match ids.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = keys.len() as u32;
                keys.push(e.key().clone());
                e.insert(id);
                id
            }
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Grows `table` with `fill` so that `id` is addressable.
fn ensure_slot(table: &mut Vec<f64>, id: u32, fill: f64) -> &mut f64 {
    let idx = id as usize;
    if table.len() <= idx {
        table.resize(idx + 1, fill);
    }
    &mut table[idx]
}

struct Node {
    state: SearchState,
    parent: Option<usize>,
    decision: Option<Decision>,
    /// Interned id of `state`'s key.
    sid: u32,
}

struct HeapEntry {
    f: f64,
    g: f64,
    idx: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.g == other.g && self.idx == other.idx
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert f (smallest first); on ties,
        // prefer the deeper node (largest g), then the most recently
        // generated node (LIFO) — together these make exploration of an
        // f-plateau depth-first, reaching goal vertices quickly.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| self.g.total_cmp(&other.g))
            .then_with(|| self.idx.cmp(&other.idx))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A* searcher over the reduced scheduling graph.
pub struct AStarSearcher<'a> {
    spec: &'a WorkloadSpec,
    goal: &'a PerformanceGoal,
    config: SearchConfig,
    table: HeuristicTable,
    memo: Option<&'a HeuristicMemo>,
    canonical: Option<CanonicalOrder>,
}

impl<'a> AStarSearcher<'a> {
    /// Creates a searcher with the default configuration. When the goal
    /// admits it, the optimality-preserving canonical-SPT reduction (see
    /// [`crate::canonical`]) is enabled automatically.
    pub fn new(spec: &'a WorkloadSpec, goal: &'a PerformanceGoal) -> Self {
        AStarSearcher {
            spec,
            goal,
            config: SearchConfig::default(),
            table: HeuristicTable::new(spec),
            memo: None,
            canonical: CanonicalOrder::for_goal(spec, goal),
        }
    }

    /// Overrides the search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Layers an adaptive-A* heuristic memo over the base heuristic:
    /// `h'(v) = max(h(v), memo[v])` (§5).
    pub fn with_memo(mut self, memo: &'a HeuristicMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    fn h(&self, state: &SearchState, key: &StateKey) -> f64 {
        // At goal vertices the remaining cost is exactly zero; returning
        // anything below that would let a costly goal pop before cheaper
        // open paths (the optimality argument needs f(goal) = g(goal)).
        if state.is_goal() {
            return 0.0;
        }
        let base = self.table.estimate(self.goal, state).as_dollars();
        match self.memo.and_then(|m| m.get(key)) {
            Some(extra) => base.max(extra),
            None => base,
        }
    }

    /// Finds a minimum-cost complete schedule for `workload`.
    pub fn solve(&self, workload: &Workload) -> CoreResult<OptimalSchedule> {
        workload.validate_against(self.spec)?;
        let counts: Vec<u16> = workload
            .template_counts(self.spec.num_templates())
            .into_iter()
            .map(|c| c as u16)
            .collect();
        let (result, _) = self.solve_counts_with_explored(&counts, false)?;
        Ok(finish_schedule(result, workload, self.spec, self.goal))
    }

    /// Like [`solve`](Self::solve) but also returns the g-values of every
    /// settled vertex, which [`crate::adaptive::AdaptiveSearcher`] turns
    /// into the reuse heuristic.
    pub fn solve_with_explored(
        &self,
        workload: &Workload,
    ) -> CoreResult<(OptimalSchedule, ExploredStates)> {
        workload.validate_against(self.spec)?;
        let counts: Vec<u16> = workload
            .template_counts(self.spec.num_templates())
            .into_iter()
            .map(|c| c as u16)
            .collect();
        let (result, explored) = self.solve_counts_with_explored(&counts, true)?;
        Ok((
            finish_schedule(result, workload, self.spec, self.goal),
            explored,
        ))
    }

    /// Plans from an arbitrary initial vertex — the online scheduler's
    /// entry point (§6.3), where the initial state carries the currently
    /// open VM. Returns the decision sequence (no query-id replay).
    pub fn plan_from(&self, initial: SearchState) -> CoreResult<Plan> {
        let (raw, _) = self.solve_state_with_explored(initial, false)?;
        Ok(Plan {
            decisions: raw.steps.iter().map(|s| s.decision).collect(),
            steps: raw.steps,
            cost: raw.cost,
            stats: raw.stats,
        })
    }

    fn solve_counts_with_explored(
        &self,
        counts: &[u16],
        keep_explored: bool,
    ) -> CoreResult<(RawResult, ExploredStates)> {
        let initial = SearchState::initial(counts.to_vec(), self.goal);
        self.solve_state_with_explored(initial, keep_explored)
    }

    fn solve_state_with_explored(
        &self,
        initial: SearchState,
        keep_explored: bool,
    ) -> CoreResult<(RawResult, ExploredStates)> {
        let nt = self.spec.num_templates();
        let mut stats = SearchStats {
            optimal: true,
            ..SearchStats::default()
        };

        if initial.is_goal() {
            return Ok((
                RawResult {
                    steps: Vec::new(),
                    cost: Money::ZERO,
                    stats,
                },
                Vec::new(),
            ));
        }

        let mut arena: Vec<Node> = Vec::with_capacity(1024);
        let mut interner = Interner::default();
        // All three per-vertex tables are flat and id-indexed.
        let mut best_g: Vec<f64> = Vec::with_capacity(1024);
        let mut h_cache: Vec<f64> = Vec::with_capacity(1024);
        // Settle-order g per id (last write wins on reopening); ids double
        // as the index, so no hashing on the expansion path.
        let mut explored_g: Vec<f64> = Vec::new();
        let mut open = BinaryHeap::new();

        let sid0 = interner.intern(initial.key(nt));
        let h0 = self.h(&initial, &interner.keys[sid0 as usize]);
        *ensure_slot(&mut best_g, sid0, f64::INFINITY) = 0.0;
        *ensure_slot(&mut h_cache, sid0, f64::NAN) = h0;
        arena.push(Node {
            state: initial.clone(),
            parent: None,
            decision: None,
            sid: sid0,
        });
        open.push(HeapEntry {
            f: h0,
            g: 0.0,
            idx: 0,
        });

        // A quick greedy completion bounds the optimum from above: any
        // vertex whose f exceeds it can never be on an optimal path.
        let upper_bound = self.greedy_completion(&initial, stats).cost.as_dollars() + G_EPS;

        // Incumbent: best goal vertex generated so far, as a fallback when
        // the node limit is hit.
        let mut incumbent: Option<(usize, f64)> = None;

        while let Some(entry) = open.pop() {
            // Cheap clone (reference bumps): lets the arena grow while the
            // popped state's successors are generated.
            let node_state = arena[entry.idx].state.clone();
            let sid = arena[entry.idx].sid;
            if entry.g > best_g[sid as usize] + G_EPS {
                continue; // stale entry
            }

            if node_state.is_goal() {
                let steps = reconstruct(&arena, entry.idx);
                stats.expanded += 1;
                stats.interned = interner.len() as u64;
                return Ok((
                    RawResult {
                        steps,
                        cost: Money::from_dollars(entry.g),
                        stats,
                    },
                    finish_explored(interner, explored_g),
                ));
            }

            stats.expanded += 1;
            if keep_explored {
                *ensure_slot(&mut explored_g, sid, f64::NAN) = entry.g;
            }

            if stats.expanded as usize >= self.config.node_limit {
                stats.optimal = false;
                stats.interned = interner.len() as u64;
                return Ok((
                    self.fallback_result(&arena, incumbent, &initial, stats),
                    finish_explored(interner, explored_g),
                ));
            }

            for decision in node_state.successors(self.spec) {
                if let (Decision::Place(t), Some(canonical)) = (decision, &self.canonical) {
                    if !canonical.allows(&node_state, t) {
                        continue;
                    }
                }
                let Some((next, weight)) = node_state.apply(self.spec, self.goal, decision) else {
                    continue;
                };
                stats.generated += 1;
                let g2 = entry.g + weight.as_dollars();
                let sid2 = interner.intern(next.key(nt));
                let known_g = ensure_slot(&mut best_g, sid2, f64::INFINITY);
                if known_g.is_finite() {
                    if g2 >= *known_g - G_EPS {
                        continue;
                    }
                    stats.reopened += 1;
                }
                *known_g = g2;
                let h_slot = ensure_slot(&mut h_cache, sid2, f64::NAN);
                let h2 = if h_slot.is_nan() {
                    let h = self.h(&next, &interner.keys[sid2 as usize]);
                    *h_slot = h;
                    h
                } else {
                    *h_slot
                };
                if g2 + h2 > upper_bound {
                    continue;
                }
                let is_goal = next.is_goal();
                arena.push(Node {
                    state: next,
                    parent: Some(entry.idx),
                    decision: Some(decision),
                    sid: sid2,
                });
                let idx = arena.len() - 1;
                if is_goal {
                    match incumbent {
                        Some((_, best)) if best <= g2 => {}
                        _ => incumbent = Some((idx, g2)),
                    }
                }
                open.push(HeapEntry {
                    f: g2 + h2,
                    g: g2,
                    idx,
                });
            }
        }

        // Open list exhausted without popping a goal: only possible if no
        // complete schedule exists, which spec validation rules out — but
        // return the incumbent defensively.
        stats.optimal = false;
        stats.interned = interner.len() as u64;
        Ok((
            self.fallback_result(&arena, incumbent, &initial, stats),
            finish_explored(interner, explored_g),
        ))
    }

    fn fallback_result(
        &self,
        arena: &[Node],
        incumbent: Option<(usize, f64)>,
        initial: &SearchState,
        stats: SearchStats,
    ) -> RawResult {
        // Greedy completion from the start; an incumbent goal generated
        // early in a limited search can be dreadful, so take the cheaper.
        let greedy = self.greedy_completion(initial, stats);
        if let Some((idx, g)) = incumbent {
            if g <= greedy.cost.as_dollars() {
                return RawResult {
                    steps: reconstruct(arena, idx),
                    cost: Money::from_dollars(g),
                    stats,
                };
            }
        }
        greedy
    }

    /// One-step-greedy completion: the cheapest out-edge at every vertex,
    /// comparing placements (Eq. 2) against renting plus the fresh VM's
    /// cheapest first placement.
    fn greedy_completion(&self, initial: &SearchState, stats: SearchStats) -> RawResult {
        let mut state = initial.clone();
        let mut steps = Vec::new();
        let mut cost = Money::ZERO;
        while !state.is_goal() {
            let mut best: Option<(Decision, Money)> = None;
            let consider = |d: Decision, w: Money, best: &mut Option<(Decision, Money)>| {
                if best
                    .as_ref()
                    .map(|&(_, bw)| w.total_cmp(&bw).is_lt())
                    .unwrap_or(true)
                {
                    *best = Some((d, w));
                }
            };
            for d in state.successors(self.spec) {
                match d {
                    Decision::Place(_) => {
                        if let Some(w) = state.edge_weight(self.spec, self.goal, d) {
                            consider(d, w, &mut best);
                        }
                    }
                    Decision::CreateVm(_) => {
                        // Price renting by the fee plus the cheapest first
                        // placement the fresh VM would then offer, so a
                        // penalized stack loses to opening a new VM.
                        let Some((fresh, startup)) = state.apply(self.spec, self.goal, d) else {
                            continue;
                        };
                        let next_best = self
                            .spec
                            .template_ids()
                            .filter_map(|t| {
                                fresh.edge_weight(self.spec, self.goal, Decision::Place(t))
                            })
                            .min_by(Money::total_cmp)
                            .unwrap_or(Money::ZERO);
                        consider(d, startup + next_best, &mut best);
                    }
                }
            }
            let (decision, _) = best.expect("validated spec always offers a decision");
            let (next, w) = state
                .apply(self.spec, self.goal, decision)
                .expect("successor decisions are applicable");
            steps.push(DecisionStep {
                state: state.clone(),
                decision,
            });
            cost += w;
            state = next;
        }
        RawResult { steps, cost, stats }
    }
}

struct RawResult {
    steps: Vec<DecisionStep>,
    cost: Money,
    stats: SearchStats,
}

/// Converts the id-indexed settle table back to keyed pairs, in id order.
/// Keys come out of the interner by reference bump, not by copy.
fn finish_explored(interner: Interner, explored_g: Vec<f64>) -> ExploredStates {
    explored_g
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_nan())
        .map(|(id, g)| (interner.keys[id].clone(), g))
        .collect()
}

fn reconstruct(arena: &[Node], goal_idx: usize) -> Vec<DecisionStep> {
    let mut steps = Vec::new();
    let mut idx = goal_idx;
    while let (Some(parent), Some(decision)) = (arena[idx].parent, arena[idx].decision) {
        steps.push(DecisionStep {
            state: arena[parent].state.clone(),
            decision,
        });
        idx = parent;
    }
    steps.reverse();
    steps
}

/// Replays the decision sequence against the concrete workload, assigning
/// real query ids (instances of a template are interchangeable, so ids are
/// handed out in workload order).
fn finish_schedule(
    raw: RawResult,
    workload: &Workload,
    _spec: &WorkloadSpec,
    _goal: &PerformanceGoal,
) -> OptimalSchedule {
    let mut by_template: Vec<std::collections::VecDeque<wisedb_core::QueryId>> = Vec::new();
    for q in workload.queries() {
        let idx = q.template.index();
        if by_template.len() <= idx {
            by_template.resize_with(idx + 1, Default::default);
        }
        by_template[idx].push_back(q.id);
    }
    let mut schedule = Schedule::empty();
    for step in &raw.steps {
        match step.decision {
            Decision::CreateVm(v) => schedule.vms.push(VmInstance::new(v)),
            Decision::Place(t) => {
                let id = by_template[t.index()]
                    .pop_front()
                    .expect("decision path places exactly the workload's queries");
                schedule
                    .vms
                    .last_mut()
                    .expect("placement always follows a start-up edge")
                    .queue
                    .push(wisedb_core::Placement {
                        query: id,
                        template: t,
                    });
            }
        }
    }
    OptimalSchedule {
        schedule,
        cost: raw.cost,
        steps: raw.steps,
        stats: raw.stats,
    }
}

/// Convenience: builds a template-id workload and solves it.
pub fn solve_counts(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    counts: &[u32],
) -> CoreResult<OptimalSchedule> {
    let workload = Workload::from_counts(counts);
    AStarSearcher::new(spec, goal).solve(&workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{total_cost, Millis, PenaltyRate, VmType};

    fn fig3_spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn fig3_goal() -> PerformanceGoal {
        PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    #[test]
    fn empty_workload_is_trivial() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let result = AStarSearcher::new(&spec, &goal)
            .solve(&Workload::empty())
            .unwrap();
        assert_eq!(result.cost, Money::ZERO);
        assert_eq!(result.schedule.num_vms(), 0);
    }

    #[test]
    fn figure_three_workload_finds_scenario_one() {
        // Q = {q1(T1), q2..q4(T2)}: the optimal schedule uses 3 VMs — T2
        // queries cannot share a VM without penalty, but one T2 and the T1
        // can (T2 first completes at 1m, T1 at 3m).
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[1, 3]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
        assert_eq!(result.schedule.num_vms(), 3);
        // No penalties: cost = 3 startups + 5 query-minutes.
        let expected = Money::from_dollars(3.0 * 0.0008 + 0.052 * 5.0 / 60.0);
        assert!(result.cost.approx_eq(expected, 1e-9));
        // Reported cost agrees with the analytic cost model.
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(result.cost.approx_eq(analytic, 1e-9));
    }

    /// §3's three-template example: FFD uses 3 VMs with a 9-minute bound,
    /// FFI also needs 3, but interleaving T1+T2+T3 per VM fits in 2 VMs.
    #[test]
    fn section_three_example_beats_both_greedy_heuristics() {
        let spec = WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_mins(4)),
                ("T2", Millis::from_mins(3)),
                ("T3", Millis::from_mins(2)),
            ],
            VmType::t2_medium(),
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(9),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        result.schedule.validate_complete(&workload).unwrap();
        // S' = {[T1,T2,T3], [T1,T2,T3]}: two VMs, zero penalty.
        assert_eq!(result.schedule.num_vms(), 2);
        let breakdown = wisedb_core::cost_breakdown(&spec, &goal, &result.schedule).unwrap();
        assert_eq!(breakdown.penalty, Money::ZERO);
    }

    #[test]
    fn average_goal_with_negative_edges_still_optimal() {
        let spec = fig3_spec();
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_secs(90),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(result.cost.approx_eq(analytic, 1e-9));

        // Exhaustive check on this small instance: enumerate a few obvious
        // alternatives and confirm none beats A*.
        for counts in [[2, 2]] {
            let _ = counts;
        }
        let ffd_like = {
            // All four queries on one VM.
            let mut s = Schedule::empty();
            s.vms.push(VmInstance::new(wisedb_core::VmTypeId(0)));
            for (i, q) in workload.queries().iter().enumerate() {
                let _ = i;
                s.vms[0].queue.push(wisedb_core::Placement {
                    query: q.id,
                    template: q.template,
                });
            }
            total_cost(&spec, &goal, &s).unwrap()
        };
        assert!(result.cost <= ffd_like + Money::from_dollars(1e-9));
    }

    #[test]
    fn percentile_goal_solves() {
        let spec = fig3_spec();
        let goal = PerformanceGoal::Percentile {
            percent: 50.0,
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(result.cost.approx_eq(analytic, 1e-9));
    }

    #[test]
    fn steps_replay_to_the_returned_schedule() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[2, 1]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        // One step per VM + one per query.
        assert_eq!(
            result.steps.len(),
            result.schedule.num_vms() + workload.len()
        );
        // First step is always a start-up (footnote 3 of the paper).
        assert!(matches!(result.steps[0].decision, Decision::CreateVm(_)));
        // Replaying weights reproduces the cost.
        let mut cost = Money::ZERO;
        for step in &result.steps {
            let w = step.state.edge_weight(&spec, &goal, step.decision).unwrap();
            cost += w;
        }
        assert!(cost.approx_eq(result.cost, 1e-9));
    }

    #[test]
    fn node_limit_falls_back_to_a_complete_schedule() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[3, 3]);
        let result = AStarSearcher::new(&spec, &goal)
            .with_config(SearchConfig { node_limit: 2 })
            .solve(&workload)
            .unwrap();
        assert!(!result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
    }

    #[test]
    fn multi_vm_type_prefers_cheap_vm_for_cheap_queries() {
        // T1 runs identically on both types; the small type is half price.
        let spec = WorkloadSpec::new(
            vec![wisedb_core::QueryTemplate::uniform(
                "T1",
                vec![Millis::from_mins(1), Millis::from_mins(1)],
            )],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        // Every rented VM should be the cheap type.
        for vm in &result.schedule.vms {
            assert_eq!(vm.vm_type, wisedb_core::VmTypeId(1));
        }
    }

    #[test]
    fn brute_force_agreement_on_tiny_instances() {
        // Cross-check A* against exhaustive enumeration of all schedules
        // for a 3-query workload under every goal kind.
        let spec = fig3_spec();
        let workload = Workload::from_counts(&[1, 2]);
        for kind in wisedb_core::GoalKind::ALL {
            let goal = PerformanceGoal::paper_default(kind, &spec)
                .unwrap()
                .tighten_pct(&spec, 0.5);
            let astar = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
            let brute = brute_force_best(&spec, &goal, &workload);
            assert!(
                astar.cost.approx_eq(brute, 1e-9),
                "{kind:?}: A*={} brute={}",
                astar.cost,
                brute
            );
        }
    }

    /// Exhaustively enumerates every partition of the workload into ordered
    /// VM queues (single VM type) and returns the best cost.
    fn brute_force_best(spec: &WorkloadSpec, goal: &PerformanceGoal, workload: &Workload) -> Money {
        fn go(
            spec: &WorkloadSpec,
            goal: &PerformanceGoal,
            remaining: &mut Vec<wisedb_core::Query>,
            schedule: &mut Schedule,
            best: &mut Money,
        ) {
            if remaining.is_empty() {
                let c = total_cost(spec, goal, schedule).unwrap();
                if c < *best {
                    *best = c;
                }
                return;
            }
            for i in 0..remaining.len() {
                let q = remaining.remove(i);
                // Place onto each existing VM...
                for v in 0..schedule.vms.len() {
                    schedule.vms[v].queue.push(wisedb_core::Placement {
                        query: q.id,
                        template: q.template,
                    });
                    go(spec, goal, remaining, schedule, best);
                    schedule.vms[v].queue.pop();
                }
                // ...or a fresh VM.
                schedule.vms.push(VmInstance::new(wisedb_core::VmTypeId(0)));
                schedule
                    .vms
                    .last_mut()
                    .unwrap()
                    .queue
                    .push(wisedb_core::Placement {
                        query: q.id,
                        template: q.template,
                    });
                go(spec, goal, remaining, schedule, best);
                schedule.vms.pop();
                remaining.insert(i, q);
            }
        }
        let mut remaining: Vec<wisedb_core::Query> = workload.queries().to_vec();
        let mut schedule = Schedule::empty();
        let mut best = Money::from_dollars(f64::INFINITY);
        go(spec, goal, &mut remaining, &mut schedule, &mut best);
        best
    }

    #[test]
    fn placement_only_on_last_vm_shapes_steps() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        // After a CreateVm, the previous VM never grows again: queue sizes
        // in the final schedule match the step sequence's run lengths.
        let mut runs = Vec::new();
        let mut current = 0usize;
        let mut seen_vm = false;
        for step in &result.steps {
            match step.decision {
                Decision::CreateVm(_) => {
                    if seen_vm {
                        runs.push(current);
                    }
                    seen_vm = true;
                    current = 0;
                }
                Decision::Place(_) => current += 1,
            }
        }
        runs.push(current);
        let queue_sizes: Vec<usize> = result
            .schedule
            .vms
            .iter()
            .map(|vm| vm.queue.len())
            .collect();
        assert_eq!(runs, queue_sizes);
    }
}
