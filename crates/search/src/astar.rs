//! Compatibility surface for the pre-strategy A* API.
//!
//! The solver now lives in [`crate::strategy`]: one [`Solver`] entry point
//! running a pluggable [`crate::strategy::SearchStrategy`] (exact A*, beam,
//! anytime weighted A*) over the shared interned-state machinery. The
//! historical [`AStarSearcher`] name is an alias of [`Solver`]; with the
//! default configuration it behaves **bit-identically** to the old
//! monolithic exact searcher (asserted by `tests/strategy_solver.rs` and
//! the differential goldens in `tests/search_interned.rs`).

pub use crate::strategy::{
    solve_counts, DecisionStep, ExploredStates, HeuristicMemo, OptimalSchedule, Plan, SearchConfig,
    SearchOutcome, SearchStats, Solver,
};

/// The historical name of the solver. Defaults to exact A*; pass a
/// [`SearchConfig`] with a different [`crate::strategy::SearchStrategy`]
/// to run beam or anytime search through the same entry point.
pub type AStarSearcher<'a> = Solver<'a>;

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{
        total_cost, Millis, Money, PenaltyRate, PerformanceGoal, Schedule, VmInstance, VmType,
        Workload, WorkloadSpec,
    };

    use crate::decision::Decision;

    fn fig3_spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn fig3_goal() -> PerformanceGoal {
        PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    #[test]
    fn empty_workload_is_trivial() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let result = AStarSearcher::new(&spec, &goal)
            .solve(&Workload::empty())
            .unwrap();
        assert_eq!(result.cost, Money::ZERO);
        assert_eq!(result.schedule.num_vms(), 0);
    }

    #[test]
    fn figure_three_workload_finds_scenario_one() {
        // Q = {q1(T1), q2..q4(T2)}: the optimal schedule uses 3 VMs — T2
        // queries cannot share a VM without penalty, but one T2 and the T1
        // can (T2 first completes at 1m, T1 at 3m).
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[1, 3]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal);
        assert_eq!(result.stats.bound, 1.0);
        result.schedule.validate_complete(&workload).unwrap();
        assert_eq!(result.schedule.num_vms(), 3);
        // No penalties: cost = 3 startups + 5 query-minutes.
        let expected = Money::from_dollars(3.0 * 0.0008 + 0.052 * 5.0 / 60.0);
        assert!(result.cost.approx_eq(expected, 1e-9));
        // Reported cost agrees with the analytic cost model.
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(result.cost.approx_eq(analytic, 1e-9));
    }

    /// §3's three-template example: FFD uses 3 VMs with a 9-minute bound,
    /// FFI also needs 3, but interleaving T1+T2+T3 per VM fits in 2 VMs.
    #[test]
    fn section_three_example_beats_both_greedy_heuristics() {
        let spec = WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_mins(4)),
                ("T2", Millis::from_mins(3)),
                ("T3", Millis::from_mins(2)),
            ],
            VmType::t2_medium(),
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(9),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        result.schedule.validate_complete(&workload).unwrap();
        // S' = {[T1,T2,T3], [T1,T2,T3]}: two VMs, zero penalty.
        assert_eq!(result.schedule.num_vms(), 2);
        let breakdown = wisedb_core::cost_breakdown(&spec, &goal, &result.schedule).unwrap();
        assert_eq!(breakdown.penalty, Money::ZERO);
    }

    #[test]
    fn average_goal_with_negative_edges_still_optimal() {
        let spec = fig3_spec();
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_secs(90),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(result.cost.approx_eq(analytic, 1e-9));

        let ffd_like = {
            // All four queries on one VM.
            let mut s = Schedule::empty();
            s.vms.push(VmInstance::new(wisedb_core::VmTypeId(0)));
            for q in workload.queries() {
                s.vms[0].queue.push(wisedb_core::Placement {
                    query: q.id,
                    template: q.template,
                });
            }
            total_cost(&spec, &goal, &s).unwrap()
        };
        assert!(result.cost <= ffd_like + Money::from_dollars(1e-9));
    }

    #[test]
    fn percentile_goal_solves() {
        let spec = fig3_spec();
        let goal = PerformanceGoal::Percentile {
            percent: 50.0,
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(result.cost.approx_eq(analytic, 1e-9));
    }

    #[test]
    fn steps_replay_to_the_returned_schedule() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[2, 1]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        // One step per VM + one per query.
        assert_eq!(
            result.steps.len(),
            result.schedule.num_vms() + workload.len()
        );
        // First step is always a start-up (footnote 3 of the paper).
        assert!(matches!(result.steps[0].decision, Decision::CreateVm(_)));
        // Replaying weights reproduces the cost.
        let mut cost = Money::ZERO;
        for step in &result.steps {
            let w = step.state.edge_weight(&spec, &goal, step.decision).unwrap();
            cost += w;
        }
        assert!(cost.approx_eq(result.cost, 1e-9));
    }

    #[test]
    fn node_limit_falls_back_to_a_complete_schedule() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[3, 3]);
        let result = AStarSearcher::new(&spec, &goal)
            .with_config(SearchConfig {
                node_limit: 2,
                ..SearchConfig::default()
            })
            .solve(&workload)
            .unwrap();
        assert!(!result.stats.optimal);
        // The budget outcome is observable, not a silent fallback: the
        // limit counts expansions (exactly `node_limit` of them), and the
        // frontier still certifies a finite suboptimality bound.
        assert!(result.stats.limit_hit);
        assert_eq!(result.stats.expanded, 2);
        assert!(result.stats.bound.is_finite());
        assert!(result.stats.bound >= 1.0);
        result.schedule.validate_complete(&workload).unwrap();
    }

    #[test]
    fn multi_vm_type_prefers_cheap_vm_for_cheap_queries() {
        // T1 runs identically on both types; the small type is half price.
        let spec = WorkloadSpec::new(
            vec![wisedb_core::QueryTemplate::uniform(
                "T1",
                vec![Millis::from_mins(1), Millis::from_mins(1)],
            )],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        // Every rented VM should be the cheap type.
        for vm in &result.schedule.vms {
            assert_eq!(vm.vm_type, wisedb_core::VmTypeId(1));
        }
    }

    #[test]
    fn brute_force_agreement_on_tiny_instances() {
        // Cross-check A* against exhaustive enumeration of all schedules
        // for a 3-query workload under every goal kind.
        let spec = fig3_spec();
        let workload = Workload::from_counts(&[1, 2]);
        for kind in wisedb_core::GoalKind::ALL {
            let goal = PerformanceGoal::paper_default(kind, &spec)
                .unwrap()
                .tighten_pct(&spec, 0.5);
            let astar = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
            let brute = brute_force_best(&spec, &goal, &workload);
            assert!(
                astar.cost.approx_eq(brute, 1e-9),
                "{kind:?}: A*={} brute={}",
                astar.cost,
                brute
            );
        }
    }

    /// Exhaustively enumerates every partition of the workload into ordered
    /// VM queues (single VM type) and returns the best cost.
    fn brute_force_best(spec: &WorkloadSpec, goal: &PerformanceGoal, workload: &Workload) -> Money {
        fn go(
            spec: &WorkloadSpec,
            goal: &PerformanceGoal,
            remaining: &mut Vec<wisedb_core::Query>,
            schedule: &mut Schedule,
            best: &mut Money,
        ) {
            if remaining.is_empty() {
                let c = total_cost(spec, goal, schedule).unwrap();
                if c < *best {
                    *best = c;
                }
                return;
            }
            for i in 0..remaining.len() {
                let q = remaining.remove(i);
                // Place onto each existing VM...
                for v in 0..schedule.vms.len() {
                    schedule.vms[v].queue.push(wisedb_core::Placement {
                        query: q.id,
                        template: q.template,
                    });
                    go(spec, goal, remaining, schedule, best);
                    schedule.vms[v].queue.pop();
                }
                // ...or a fresh VM.
                schedule.vms.push(VmInstance::new(wisedb_core::VmTypeId(0)));
                schedule
                    .vms
                    .last_mut()
                    .unwrap()
                    .queue
                    .push(wisedb_core::Placement {
                        query: q.id,
                        template: q.template,
                    });
                go(spec, goal, remaining, schedule, best);
                schedule.vms.pop();
                remaining.insert(i, q);
            }
        }
        let mut remaining: Vec<wisedb_core::Query> = workload.queries().to_vec();
        let mut schedule = Schedule::empty();
        let mut best = Money::from_dollars(f64::INFINITY);
        go(spec, goal, &mut remaining, &mut schedule, &mut best);
        best
    }

    #[test]
    fn placement_only_on_last_vm_shapes_steps() {
        let spec = fig3_spec();
        let goal = fig3_goal();
        let workload = Workload::from_counts(&[2, 2]);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        // After a CreateVm, the previous VM never grows again: queue sizes
        // in the final schedule match the step sequence's run lengths.
        let mut runs = Vec::new();
        let mut current = 0usize;
        let mut seen_vm = false;
        for step in &result.steps {
            match step.decision {
                Decision::CreateVm(_) => {
                    if seen_vm {
                        runs.push(current);
                    }
                    seen_vm = true;
                    current = 0;
                }
                Decision::Place(_) => current += 1,
            }
        }
        runs.push(current);
        let queue_sizes: Vec<usize> = result
            .schedule
            .vms
            .iter()
            .map(|vm| vm.queue.len())
            .collect();
        assert_eq!(runs, queue_sizes);
    }
}
