//! Feature extraction (§4.4).
//!
//! Each vertex along an optimal path is summarized by features that are
//! deliberately **workload-size agnostic** (training workloads are small,
//! runtime workloads are huge), **goal agnostic** (the same schema serves
//! every metric), and **mutually non-redundant**:
//!
//! * `wait-time` — execution time already queued on the most recent VM;
//! * `proportion-of-X` — fraction of that VM's queue that is template X;
//! * `supports-X` — whether that VM's type can process template X;
//! * `cost-of-X` — the placement-edge weight for X (infinite if impossible);
//! * `have-X` — whether an instance of X is still unassigned.

use wisedb_core::{Money, PerformanceGoal, TemplateId, WorkloadSpec};
use wisedb_search::SearchState;

use serde::{Deserialize, Serialize};

/// Layout of the feature vector for a given specification size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSchema {
    /// Number of query templates (drives the per-template feature groups).
    pub num_templates: usize,
    /// Number of VM types (drives the decision-label domain).
    pub num_vm_types: usize,
}

/// Which feature a column index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Queued execution time on the most recent VM, in seconds.
    WaitTime,
    /// Fraction of the most recent VM's queue that is this template.
    ProportionOf(TemplateId),
    /// 1.0 if the most recent VM's type supports this template.
    Supports(TemplateId),
    /// Placement-edge weight for this template, in dollars (∞ if the most
    /// recent VM cannot process it or no VM exists).
    CostOf(TemplateId),
    /// 1.0 if an instance of this template is still unassigned.
    Have(TemplateId),
}

impl FeatureSchema {
    /// Schema for a specification.
    pub fn for_spec(spec: &WorkloadSpec) -> Self {
        FeatureSchema {
            num_templates: spec.num_templates(),
            num_vm_types: spec.num_vm_types(),
        }
    }

    /// Number of feature columns: `wait-time` plus four per template.
    pub fn num_features(&self) -> usize {
        1 + 4 * self.num_templates
    }

    /// Number of decision labels: one placement per template plus one
    /// start-up per VM type.
    pub fn num_labels(&self) -> usize {
        self.num_templates + self.num_vm_types
    }

    /// The meaning of column `index`.
    pub fn kind(&self, index: usize) -> FeatureKind {
        if index == 0 {
            return FeatureKind::WaitTime;
        }
        let index = index - 1;
        let template = TemplateId((index % self.num_templates) as u32);
        match index / self.num_templates {
            0 => FeatureKind::ProportionOf(template),
            1 => FeatureKind::Supports(template),
            2 => FeatureKind::CostOf(template),
            _ => FeatureKind::Have(template),
        }
    }

    /// Human-readable column name (matches the paper's vocabulary).
    pub fn feature_name(&self, index: usize) -> String {
        match self.kind(index) {
            FeatureKind::WaitTime => "wait-time".to_string(),
            FeatureKind::ProportionOf(t) => format!("proportion-of-{t}"),
            FeatureKind::Supports(t) => format!("supports-{t}"),
            FeatureKind::CostOf(t) => format!("cost-of-{t}"),
            FeatureKind::Have(t) => format!("have-{t}"),
        }
    }

    /// Column index of `wait-time`.
    pub fn wait_time_index(&self) -> usize {
        0
    }

    /// Column index of `proportion-of-t`.
    pub fn proportion_index(&self, t: TemplateId) -> usize {
        1 + t.index()
    }

    /// Column index of `supports-t`.
    pub fn supports_index(&self, t: TemplateId) -> usize {
        1 + self.num_templates + t.index()
    }

    /// Column index of `cost-of-t`.
    pub fn cost_index(&self, t: TemplateId) -> usize {
        1 + 2 * self.num_templates + t.index()
    }

    /// Column index of `have-t`.
    pub fn have_index(&self, t: TemplateId) -> usize {
        1 + 3 * self.num_templates + t.index()
    }

    /// Extracts the feature vector of a search vertex.
    pub fn extract(
        &self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        state: &SearchState,
    ) -> Vec<f64> {
        let mut out = vec![0.0; self.num_features()];
        let last = state.last_vm.as_ref();
        out[0] = last.map(|l| l.wait.as_secs_f64()).unwrap_or(0.0);

        let queue_len = last.map(|l| l.queue.len()).unwrap_or(0);
        let counts = last.map(|l| l.queue_counts(self.num_templates));

        for i in 0..self.num_templates {
            let t = TemplateId(i as u32);
            // proportion-of-X
            if queue_len > 0 {
                if let Some(counts) = &counts {
                    out[self.proportion_index(t)] = counts[i] as f64 / queue_len as f64;
                }
            }
            // supports-X
            let supported = last
                .map(|l| spec.latency(t, l.vm_type).is_some())
                .unwrap_or(false);
            out[self.supports_index(t)] = if supported { 1.0 } else { 0.0 };
            // cost-of-X: hypothetical placement-edge weight, even when the
            // template is depleted (have-X carries availability).
            out[self.cost_index(t)] = hypothetical_placement_cost(spec, goal, state, t)
                .map(|m| m.as_dollars())
                .unwrap_or(f64::INFINITY);
            // have-X
            let have = state.unassigned.get(i).map(|&c| c > 0).unwrap_or(false);
            out[self.have_index(t)] = if have { 1.0 } else { 0.0 };
        }
        out
    }
}

/// The weight the placement edge for `t` *would* carry at `state`
/// (Eq. 2), ignoring whether an instance of `t` is actually unassigned.
/// `None` when no VM exists or its type cannot process `t`.
pub fn hypothetical_placement_cost(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    state: &SearchState,
    t: TemplateId,
) -> Option<Money> {
    let last = state.last_vm.as_ref()?;
    let exec = spec.latency(t, last.vm_type)?;
    let runtime = spec.vm_type(last.vm_type).ok()?.runtime_cost(exec);
    let completion = last.wait + exec;
    let mut tracker = state.tracker.clone();
    let delta = tracker.push(goal, t, completion);
    Some(runtime + delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{Millis, PenaltyRate, VmType, VmTypeId};
    use wisedb_search::Decision;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn goal() -> PerformanceGoal {
        PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    #[test]
    fn schema_layout_round_trips() {
        let schema = FeatureSchema {
            num_templates: 3,
            num_vm_types: 2,
        };
        assert_eq!(schema.num_features(), 13);
        assert_eq!(schema.num_labels(), 5);
        assert_eq!(schema.feature_name(0), "wait-time");
        assert_eq!(
            schema.feature_name(schema.proportion_index(TemplateId(1))),
            "proportion-of-T2"
        );
        assert_eq!(
            schema.feature_name(schema.cost_index(TemplateId(2))),
            "cost-of-T3"
        );
        assert_eq!(
            schema.feature_name(schema.have_index(TemplateId(0))),
            "have-T1"
        );
        // Every column has a distinct kind/name.
        let names: std::collections::HashSet<String> = (0..schema.num_features())
            .map(|i| schema.feature_name(i))
            .collect();
        assert_eq!(names.len(), schema.num_features());
    }

    #[test]
    fn start_vertex_features() {
        let spec = spec();
        let goal = goal();
        let schema = FeatureSchema::for_spec(&spec);
        let state = SearchState::initial(vec![1, 2], &goal);
        let f = schema.extract(&spec, &goal, &state);
        assert_eq!(f[schema.wait_time_index()], 0.0);
        // No VM yet: nothing supported, placement impossible (infinite cost).
        assert_eq!(f[schema.supports_index(TemplateId(0))], 0.0);
        assert!(f[schema.cost_index(TemplateId(0))].is_infinite());
        assert_eq!(f[schema.have_index(TemplateId(0))], 1.0);
        assert_eq!(f[schema.have_index(TemplateId(1))], 1.0);
    }

    #[test]
    fn features_track_the_walkthrough_of_section_4_5() {
        // Mirrors Figure 6's right-hand side: after placing one T2 on the
        // first VM, wait-time is one minute and proportions shift.
        let spec = spec();
        let goal = goal();
        let schema = FeatureSchema::for_spec(&spec);
        let state = SearchState::initial(vec![1, 2], &goal);
        let (state, _) = state
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        let (state, _) = state
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();

        let f = schema.extract(&spec, &goal, &state);
        assert_eq!(f[schema.wait_time_index()], 60.0);
        assert_eq!(f[schema.proportion_index(TemplateId(0))], 0.0);
        assert_eq!(f[schema.proportion_index(TemplateId(1))], 1.0);
        assert_eq!(f[schema.supports_index(TemplateId(0))], 1.0);

        // Placing another T2 would complete at 2m, violating its 1m
        // deadline by 60s: cost = runtime + $0.60 penalty.
        let cost_t2 = f[schema.cost_index(TemplateId(1))];
        let expected = 0.052 / 60.0 + 0.60;
        assert!((cost_t2 - expected).abs() < 1e-9, "{cost_t2} vs {expected}");

        // Placing the T1 completes at 3m, exactly on deadline: no penalty.
        let cost_t1 = f[schema.cost_index(TemplateId(0))];
        let expected = 0.052 * 2.0 / 60.0;
        assert!((cost_t1 - expected).abs() < 1e-9);
    }

    #[test]
    fn cost_is_infinite_on_unsupporting_vm() {
        let spec = WorkloadSpec::new(
            vec![
                wisedb_core::QueryTemplate {
                    name: "medium-only".into(),
                    latencies: vec![Some(Millis::from_mins(1)), None],
                },
                wisedb_core::QueryTemplate::uniform(
                    "both",
                    vec![Millis::from_mins(1), Millis::from_mins(1)],
                ),
            ],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(10),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let schema = FeatureSchema::for_spec(&spec);
        let state = SearchState::initial(vec![1, 1], &goal);
        let (state, _) = state
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(1)))
            .unwrap();
        let f = schema.extract(&spec, &goal, &state);
        assert!(f[schema.cost_index(TemplateId(0))].is_infinite());
        assert_eq!(f[schema.supports_index(TemplateId(0))], 0.0);
        assert!(f[schema.cost_index(TemplateId(1))].is_finite());
        assert_eq!(f[schema.supports_index(TemplateId(1))], 1.0);
    }

    #[test]
    fn have_flags_follow_depletion() {
        let spec = spec();
        let goal = goal();
        let schema = FeatureSchema::for_spec(&spec);
        let state = SearchState::initial(vec![1, 0], &goal);
        let (state, _) = state
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        let f = schema.extract(&spec, &goal, &state);
        assert_eq!(f[schema.have_index(TemplateId(0))], 1.0);
        assert_eq!(f[schema.have_index(TemplateId(1))], 0.0);

        let (state, _) = state
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        let f = schema.extract(&spec, &goal, &state);
        assert_eq!(f[schema.have_index(TemplateId(0))], 0.0);
    }
}
