//! # wisedb-learn
//!
//! The supervised-learning layer of WiSeDB (§4.4–4.5): turning optimal
//! scheduling decisions into a reusable policy.
//!
//! The pipeline is:
//!
//! 1. [`features::FeatureSchema`] summarizes each vertex of an optimal path
//!    with the paper's workload-size-agnostic features (`wait-time`,
//!    `proportion-of-X`, `supports-X`, `cost-of-X`, `have-X`).
//! 2. [`dataset::Dataset`] collects `(features, decision)` pairs across all
//!    sample workloads.
//! 3. [`tree::DecisionTree`] — a from-scratch C4.5/J48-style learner
//!    (gain-ratio binary splits, pessimistic pruning) — generalizes those
//!    pairs into a workload-management strategy.
//!
//! The decision-tree learner is deliberately self-contained (no ML crates):
//! the Rust ecosystem offers no maintained C4.5 implementation, and the
//! paper's models are small enough (tens of features, shallow trees) that a
//! faithful reimplementation is both feasible and auditable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod features;
pub mod tree;

pub use dataset::Dataset;
pub use features::{hypothetical_placement_cost, FeatureKind, FeatureSchema};
pub use tree::{DecisionTree, TreeParams};
