//! Training-set assembly: `(features, decision)` pairs from optimal paths.

use wisedb_core::{PerformanceGoal, WorkloadSpec};
use wisedb_search::OptimalSchedule;

use crate::features::FeatureSchema;

/// A dense training set for the decision-tree learner.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Column layout.
    pub schema: FeatureSchema,
    /// One feature vector per decision, row-major.
    pub rows: Vec<Vec<f64>>,
    /// The decision label taken at each row (see
    /// [`wisedb_search::Decision::label`]).
    pub labels: Vec<usize>,
}

impl Dataset {
    /// An empty dataset for the given schema.
    pub fn new(schema: FeatureSchema) -> Self {
        Dataset {
            schema,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of training examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends every decision of one optimal path.
    pub fn push_path(
        &mut self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        path: &OptimalSchedule,
    ) {
        for step in &path.steps {
            let features = self.schema.extract(spec, goal, &step.state);
            self.rows.push(features);
            self.labels
                .push(step.decision.label(self.schema.num_templates));
        }
    }

    /// Builds a dataset from a batch of optimal paths.
    pub fn from_paths(
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        paths: &[OptimalSchedule],
    ) -> Self {
        let mut ds = Dataset::new(FeatureSchema::for_spec(spec));
        for p in paths {
            ds.push_path(spec, goal, p);
        }
        ds
    }

    /// How often each label occurs.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.schema.num_labels()];
        for &l in &self.labels {
            if l < hist.len() {
                hist[l] += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{Millis, PenaltyRate, VmType, Workload};
    use wisedb_search::AStarSearcher;

    #[test]
    fn dataset_collects_one_row_per_decision() {
        let spec = WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap();
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[1, 2]);
        let path = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        let ds = Dataset::from_paths(&spec, &goal, &[path.clone()]);
        assert_eq!(ds.len(), path.steps.len());
        assert!(!ds.is_empty());
        // Labels are within the decision domain |T| + |V|.
        assert!(ds.labels.iter().all(|&l| l < ds.schema.num_labels()));
        // The histogram accounts for every example.
        assert_eq!(ds.label_histogram().iter().sum::<usize>(), ds.len());
        // Placements of T1, T2 and VM creations all appear.
        let hist = ds.label_histogram();
        assert_eq!(hist[0], 1); // one T1 placement
        assert_eq!(hist[1], 2); // two T2 placements
        assert!(hist[2] >= 1); // at least one VM creation
    }
}
