//! A hand-rolled C4.5/J48-style decision-tree learner.
//!
//! The paper trains its workload-management models with Weka's J48 (§7.1),
//! i.e. C4.5: top-down induction with gain-ratio split selection and
//! confidence-based (pessimistic) error pruning. No adequate Rust crate
//! exists for this, so the learner is implemented here from scratch:
//!
//! * binary splits `feature < threshold` on numeric columns (booleans are
//!   encoded 0/1, infinities — the `cost-of-X = ∞` case — sort after every
//!   finite value and split off naturally);
//! * split selection by **gain ratio** (information gain normalized by split
//!   entropy), C4.5's guard against many-valued features;
//! * **pessimistic pruning** with the Wilson-style upper confidence bound on
//!   the leaf error rate (J48's `addErrs`, default CF = 0.25), applied
//!   bottom-up during induction (subtree replacement; subtree raising is not
//!   implemented).
//!
//! Induction presorts each feature column once at the root and keeps every
//! node's rows contiguous and value-sorted in those arrays by stably
//! partitioning the node's span at each split, so split search is a linear
//! scan instead of an `O(n log n)` per-node, per-feature sort. Candidate
//! thresholds sit between distinct values and their prefix label counts are
//! tie-order independent, so this picks exactly the splits the sort-per-node
//! builder picked.
//!
//! The trained tree is stored **flat**: a structure-of-arrays in preorder,
//! with the left child of node `i` implicitly at `i + 1` and the right child
//! index stored explicitly. `predict` — which sits on the per-arrival hot
//! path of `WorkloadService`/`MultiScheduler` — is a tight iterative loop
//! over three contiguous arrays with no recursion or pointer chasing.

use serde::{Deserialize, Serialize, Value};

use crate::dataset::Dataset;

/// Induction and pruning parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
    /// Minimum number of training examples in each child of a split
    /// (J48's `minNumObj`, default 2).
    pub min_leaf: usize,
    /// Minimum number of examples at a node to attempt a split.
    pub min_split: usize,
    /// Whether to apply pessimistic pruning.
    pub prune: bool,
    /// Pruning confidence factor (J48's `CF`, default 0.25; smaller prunes
    /// more aggressively).
    pub confidence: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 40,
            min_leaf: 2,
            min_split: 4,
            prune: true,
            confidence: 0.25,
        }
    }
}

/// Sentinel in the `feature` array marking a leaf node.
const LEAF: u32 = u32::MAX;

/// A trained decision tree mapping feature vectors to decision labels.
///
/// Nodes live in preorder in parallel arrays: node `i` is a leaf iff
/// `feature[i] == u32::MAX`, in which case `right[i]` holds its label;
/// otherwise `feature[i]`/`threshold[i]` encode the test
/// `features[feature] < threshold`, the left (`<`) child is at `i + 1` and
/// the right child at `right[i]`. `samples`/`errors` carry the per-leaf
/// training statistics shown by [`DecisionTree::render`] (splits store their
/// sample count and zero errors by convention, so trees rebuilt from the
/// legacy recursive JSON form compare equal to freshly trained ones).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    right: Vec<u32>,
    samples: Vec<u32>,
    errors: Vec<u32>,
    num_features: usize,
    num_labels: usize,
}

impl DecisionTree {
    /// Trains a tree on `dataset`.
    ///
    /// # Panics
    /// Panics if the dataset is empty (there is nothing to learn from).
    pub fn train(dataset: &Dataset, params: &TreeParams) -> DecisionTree {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut span = wisedb_obs::span("learn.fit_tree");
        let n = dataset.len();
        let num_features = dataset.schema.num_features();
        let mut indices: Vec<usize> = (0..n).collect();
        let orders: Vec<Vec<u32>> = (0..num_features)
            .map(|f| {
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    dataset.rows[a as usize][f].total_cmp(&dataset.rows[b as usize][f])
                });
                order
            })
            .collect();
        let mut builder = Builder {
            dataset,
            params,
            tree: DecisionTree {
                feature: Vec::new(),
                threshold: Vec::new(),
                right: Vec::new(),
                samples: Vec::new(),
                errors: Vec::new(),
                num_features,
                num_labels: dataset.schema.num_labels(),
            },
            orders,
            in_left: vec![false; n],
            scratch: vec![0u32; n],
        };
        builder.build(&mut indices, 0, 0);
        let tree = builder.tree;
        if span.recording() {
            span.attr_u64("rows", dataset.len() as u64);
            span.attr_u64("nodes", tree.num_nodes() as u64);
            span.attr_u64("depth", tree.depth() as u64);
        }
        tree
    }

    /// Predicts the decision label for a feature vector.
    ///
    /// # Panics
    /// Panics if `features` is shorter than the training schema.
    #[inline]
    pub fn predict(&self, features: &[f64]) -> usize {
        assert!(
            features.len() >= self.num_features,
            "feature vector has {} columns, tree expects {}",
            features.len(),
            self.num_features
        );
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.right[i] as usize;
            }
            i = if features[f as usize] < self.threshold[i] {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }

    /// Fraction of `dataset` rows the tree classifies correctly.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 1.0;
        }
        let correct = dataset
            .rows
            .iter()
            .zip(&dataset.labels)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / dataset.len() as f64
    }

    /// Height of the tree (a lone leaf has depth 0). The paper observes its
    /// trees stay shallow (h < 30), which bounds scheduling to `O(h·n)`.
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        let mut stack = vec![(0u32, 0usize)];
        while let Some((i, d)) = stack.pop() {
            let i = i as usize;
            if self.feature[i] == LEAF {
                max = max.max(d);
            } else {
                stack.push((i as u32 + 1, d + 1));
                stack.push((self.right[i], d + 1));
            }
        }
        max
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.feature.iter().filter(|&&f| f == LEAF).count()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of decision labels the tree can emit.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The `(feature, threshold)` tested at the root, or `None` if the tree
    /// is a single leaf. Inspection hook for tests and tools now that the
    /// recursive node form is gone.
    pub fn root_split(&self) -> Option<(usize, f64)> {
        if self.feature[0] == LEAF {
            None
        } else {
            Some((self.feature[0] as usize, self.threshold[0]))
        }
    }

    /// Renders the tree as indented text, in the spirit of Figure 6.
    pub fn render(
        &self,
        feature_name: &dyn Fn(usize) -> String,
        label_name: &dyn Fn(usize) -> String,
    ) -> String {
        enum Item {
            Node(usize, usize),
            Text(usize, &'static str),
        }
        let mut out = String::new();
        let mut stack = vec![Item::Node(0, 0)];
        while let Some(item) = stack.pop() {
            match item {
                Item::Text(indent, text) => {
                    out.push_str(&format!("{}{text}\n", "  ".repeat(indent)));
                }
                Item::Node(i, indent) => {
                    let pad = "  ".repeat(indent);
                    if self.feature[i] == LEAF {
                        out.push_str(&format!(
                            "{pad}=> {} ({} samples, {} errors)\n",
                            label_name(self.right[i] as usize),
                            self.samples[i],
                            self.errors[i],
                        ));
                    } else {
                        out.push_str(&format!(
                            "{pad}{} < {:.6}?\n",
                            feature_name(self.feature[i] as usize),
                            self.threshold[i]
                        ));
                        // Preorder via LIFO: push in reverse emission order.
                        stack.push(Item::Node(self.right[i] as usize, indent + 1));
                        stack.push(Item::Text(indent, "no:"));
                        stack.push(Item::Node(i + 1, indent + 1));
                        stack.push(Item::Text(indent, "yes:"));
                    }
                }
            }
        }
        out
    }

    fn push_leaf(&mut self, label: usize, samples: usize, errors: usize) {
        self.feature.push(LEAF);
        self.threshold.push(0.0);
        self.right.push(label as u32);
        self.samples.push(samples as u32);
        self.errors.push(errors as u32);
    }

    fn push_split(&mut self, feature: usize, threshold: f64, samples: usize) -> usize {
        let at = self.feature.len();
        self.feature.push(feature as u32);
        self.threshold.push(threshold);
        self.right.push(0); // patched once the right subtree is placed
        self.samples.push(samples as u32);
        self.errors.push(0);
        at
    }

    /// Drops every node from `at` onward (the tail of the arrays is always a
    /// whole preorder subtree during construction — this is how pruning
    /// replaces a built subtree with a leaf).
    fn truncate(&mut self, at: usize) {
        self.feature.truncate(at);
        self.threshold.truncate(at);
        self.right.truncate(at);
        self.samples.truncate(at);
        self.errors.truncate(at);
    }

    /// Structural sanity for trees built from untrusted (deserialized) data:
    /// equal array lengths, labels/features in range, and every right-child
    /// index pointing strictly forward (which also guarantees `predict`
    /// terminates).
    fn validate(&self) -> Result<(), serde::Error> {
        let n = self.feature.len();
        if n == 0 {
            return Err(serde::Error::custom("decision tree has no nodes"));
        }
        if [
            self.threshold.len(),
            self.right.len(),
            self.samples.len(),
            self.errors.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(serde::Error::custom(
                "decision tree arrays disagree on length",
            ));
        }
        for i in 0..n {
            if self.feature[i] == LEAF {
                if (self.right[i] as usize) >= self.num_labels {
                    return Err(serde::Error::custom(format!(
                        "leaf {i} label {} out of range",
                        self.right[i]
                    )));
                }
            } else {
                if (self.feature[i] as usize) >= self.num_features {
                    return Err(serde::Error::custom(format!(
                        "split {i} feature {} out of range",
                        self.feature[i]
                    )));
                }
                let r = self.right[i] as usize;
                if r <= i + 1 || r >= n {
                    return Err(serde::Error::custom(format!(
                        "split {i} right child {r} out of range"
                    )));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Serde: flat format out, flat *or* legacy recursive format in
// ---------------------------------------------------------------------------

impl Serialize for DecisionTree {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("num_features".to_owned(), self.num_features.to_value()),
            ("num_labels".to_owned(), self.num_labels.to_value()),
            ("feature".to_owned(), self.feature.to_value()),
            ("threshold".to_owned(), self.threshold.to_value()),
            ("right".to_owned(), self.right.to_value()),
            ("samples".to_owned(), self.samples.to_value()),
            ("errors".to_owned(), self.errors.to_value()),
        ])
    }
}

impl Deserialize for DecisionTree {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("decision tree missing `{name}`")))
        };
        let num_features = usize::from_value(field("num_features")?)?;
        let num_labels = usize::from_value(field("num_labels")?)?;
        let mut tree = DecisionTree {
            feature: Vec::new(),
            threshold: Vec::new(),
            right: Vec::new(),
            samples: Vec::new(),
            errors: Vec::new(),
            num_features,
            num_labels,
        };
        if let Some(root) = v.get("root") {
            // Legacy recursive format: `{"root": {"Split"|"Leaf": {..}}, ..}`
            // as written by models serialized before the flat representation.
            flatten_legacy(root, &mut tree)?;
        } else {
            tree.feature = Vec::from_value(field("feature")?)?;
            tree.threshold = Vec::from_value(field("threshold")?)?;
            tree.right = Vec::from_value(field("right")?)?;
            tree.samples = Vec::from_value(field("samples")?)?;
            tree.errors = Vec::from_value(field("errors")?)?;
        }
        tree.validate()?;
        Ok(tree)
    }
}

/// Rebuilds the flat preorder arrays from a legacy externally-tagged
/// `TreeNode` value (`{"Leaf": {...}}` / `{"Split": {...}}`). Split nodes
/// recover their sample count as the sum of the children's (identical to
/// what training records) and store zero errors, matching the convention in
/// [`DecisionTree::push_split`].
fn flatten_legacy(node: &Value, tree: &mut DecisionTree) -> Result<(), serde::Error> {
    let field = |obj: &Value, name: &str| -> Result<Value, serde::Error> {
        obj.get(name)
            .cloned()
            .ok_or_else(|| serde::Error::custom(format!("legacy tree node missing `{name}`")))
    };
    if let Some(leaf) = node.get("Leaf") {
        let label = usize::from_value(&field(leaf, "label")?)?;
        let samples = usize::from_value(&field(leaf, "samples")?)?;
        let errors = usize::from_value(&field(leaf, "errors")?)?;
        tree.push_leaf(label, samples, errors);
        Ok(())
    } else if let Some(split) = node.get("Split") {
        let feature = usize::from_value(&field(split, "feature")?)?;
        let threshold = f64::from_value(&field(split, "threshold")?)?;
        let at = tree.push_split(feature, threshold, 0);
        flatten_legacy(&field(split, "left")?, tree)?;
        let right = tree.feature.len();
        flatten_legacy(&field(split, "right")?, tree)?;
        tree.right[at] = right as u32;
        tree.samples[at] = tree.samples[at + 1] + tree.samples[right];
        Ok(())
    } else {
        Err(serde::Error::custom(
            "legacy tree node is neither `Leaf` nor `Split`",
        ))
    }
}

// ---------------------------------------------------------------------------
// Induction
// ---------------------------------------------------------------------------

struct Builder<'a> {
    dataset: &'a Dataset,
    params: &'a TreeParams,
    tree: DecisionTree,
    /// One permutation of all row indices per feature, sorted by that
    /// feature's value. Invariant: every node's rows occupy a contiguous,
    /// still-sorted span in each array — maintained by stably partitioning
    /// the span at every split, so `best_split` never sorts. Split choice is
    /// unaffected by tie order among equal values (candidate boundaries sit
    /// between *distinct* values and the prefix label counts there are
    /// order-independent), so this evaluates the exact same candidates with
    /// the exact same arithmetic as a per-node sort.
    orders: Vec<Vec<u32>>,
    /// Scratch: `in_left[row]` during a split's partition step, else false.
    in_left: Vec<bool>,
    /// Scratch for the stable partition (holds a span's right-side rows).
    scratch: Vec<u32>,
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain_ratio: f64,
}

impl Builder<'_> {
    fn label_counts(&self, idx: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.dataset.schema.num_labels()];
        for &i in idx {
            counts[self.dataset.labels[i]] += 1;
        }
        counts
    }

    /// Appends the subtree for `idx` (the span `[lo, lo + idx.len())` of
    /// every feature order) to the flat arrays and returns its pessimistic
    /// error estimate (per-leaf observed errors plus the confidence
    /// correction, summed bottom-up in tree order — the same quantity the
    /// recursive builder recomputed by walking each subtree).
    fn build(&mut self, idx: &mut [usize], lo: usize, depth: usize) -> f64 {
        let counts = self.label_counts(idx);
        let (majority, majority_count) = argmax(&counts);
        let errors = idx.len() - majority_count;
        let leaf_errs =
            errors as f64 + add_errs(idx.len() as f64, errors as f64, self.params.confidence);
        let at = self.tree.feature.len();
        if errors == 0 || idx.len() < self.params.min_split || depth >= self.params.max_depth {
            self.tree.push_leaf(majority, idx.len(), errors);
            return leaf_errs;
        }
        let Some(split) = self.best_split(lo, idx.len(), &counts) else {
            self.tree.push_leaf(majority, idx.len(), errors);
            return leaf_errs;
        };
        // Partition indices in place: left = `< threshold`.
        let mut mid = 0;
        for i in 0..idx.len() {
            if self.dataset.rows[idx[i]][split.feature] < split.threshold {
                idx.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < idx.len());
        // Stably partition this node's span of every feature order, so both
        // children keep the contiguous-and-sorted invariant.
        for &r in &idx[..mid] {
            self.in_left[r] = true;
        }
        let n = idx.len();
        for order in &mut self.orders {
            let span = &mut order[lo..lo + n];
            let mut keep = 0usize;
            let mut spill = 0usize;
            for i in 0..n {
                let r = span[i];
                if self.in_left[r as usize] {
                    span[keep] = r;
                    keep += 1;
                } else {
                    self.scratch[spill] = r;
                    spill += 1;
                }
            }
            span[keep..].copy_from_slice(&self.scratch[..spill]);
        }
        for &r in &idx[..mid] {
            self.in_left[r] = false;
        }
        self.tree
            .push_split(split.feature, split.threshold, idx.len());
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        let left_errs = self.build(left_idx, lo, depth + 1);
        let right_at = self.tree.feature.len();
        let right_errs = self.build(right_idx, lo + mid, depth + 1);
        self.tree.right[at] = right_at as u32;
        let subtree_errs = left_errs + right_errs;
        if self.params.prune {
            // J48's subtree-replacement rule (with its 0.1 slack). The whole
            // subtree sits at the tail of the arrays, so replacement is a
            // truncation.
            if leaf_errs <= subtree_errs + 0.1 {
                self.tree.truncate(at);
                self.tree.push_leaf(majority, idx.len(), errors);
                return leaf_errs;
            }
        }
        subtree_errs
    }

    /// Finds the best gain-ratio split over the node occupying span
    /// `[lo, lo + len)` of the presorted feature orders.
    fn best_split(&self, lo: usize, len: usize, counts: &[usize]) -> Option<SplitChoice> {
        let n = len as f64;
        let base_entropy = entropy(counts, len);
        let mut best: Option<SplitChoice> = None;

        let num_features = self.dataset.schema.num_features();
        let mut left_counts = vec![0usize; counts.len()];
        let mut right_counts = vec![0usize; counts.len()];
        for feature in 0..num_features {
            let order = &self.orders[feature][lo..lo + len];
            left_counts.iter_mut().for_each(|c| *c = 0);
            right_counts.copy_from_slice(counts);
            let mut left_n = 0usize;
            for w in 0..order.len() - 1 {
                let row = order[w] as usize;
                let label = self.dataset.labels[row];
                left_counts[label] += 1;
                right_counts[label] -= 1;
                left_n += 1;
                let v = self.dataset.rows[row][feature];
                let v_next = self.dataset.rows[order[w + 1] as usize][feature];
                if v_next <= v {
                    continue; // not a boundary between distinct values
                }
                let right_n = len - left_n;
                if left_n < self.params.min_leaf || right_n < self.params.min_leaf {
                    continue;
                }
                let h_left = entropy(&left_counts, left_n);
                let h_right = entropy(&right_counts, right_n);
                let gain =
                    base_entropy - (left_n as f64 / n) * h_left - (right_n as f64 / n) * h_right;
                if gain <= 1e-12 {
                    continue;
                }
                let pl = left_n as f64 / n;
                let pr = right_n as f64 / n;
                let split_info = -(pl * pl.log2() + pr * pr.log2());
                if split_info <= 1e-12 {
                    continue;
                }
                let gain_ratio = gain / split_info;
                let better = match &best {
                    None => true,
                    Some(b) => {
                        gain_ratio > b.gain_ratio + 1e-12
                            || (gain_ratio > b.gain_ratio - 1e-12 && feature < b.feature)
                    }
                };
                if better {
                    let threshold = midpoint(v, v_next);
                    best = Some(SplitChoice {
                        feature,
                        threshold,
                        gain_ratio,
                    });
                }
            }
        }
        best
    }
}

fn argmax(counts: &[usize]) -> (usize, usize) {
    let mut best = (0usize, 0usize);
    for (i, &c) in counts.iter().enumerate() {
        if c > best.1 {
            best = (i, c);
        }
    }
    best
}

/// Shannon entropy (bits) of a label distribution.
fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Midpoint threshold between two consecutive distinct values, robust to
/// infinities (`cost-of-X = ∞`) and float rounding. Splits are `value < t`.
fn midpoint(lo: f64, hi: f64) -> f64 {
    if !hi.is_finite() {
        // Everything finite goes left, infinite right.
        return f64::MAX;
    }
    let mid = lo + (hi - lo) / 2.0;
    if mid > lo {
        mid
    } else {
        hi
    }
}

/// J48's `addErrs`: the expected number of *additional* errors at a leaf of
/// `n` examples with `e` observed errors, at confidence factor `cf`, using
/// the upper bound of the binomial confidence interval (normal
/// approximation with continuity correction).
fn add_errs(n: f64, e: f64, cf: f64) -> f64 {
    if cf > 0.5 {
        return 0.0;
    }
    if e == 0.0 {
        return n * (1.0 - cf.powf(1.0 / n));
    }
    if e < 1.0 {
        let base = n * (1.0 - cf.powf(1.0 / n));
        return base + e * (add_errs(n, 1.0, cf) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = normal_inverse(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (r * n) - e
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 over (0, 1)).
fn normal_inverse(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inverse domain is (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSchema;

    /// A dataset with a hand-built schema (bypassing feature extraction) so
    /// learner behaviour can be tested in isolation.
    fn synthetic(rows: Vec<Vec<f64>>, labels: Vec<usize>, num_labels_hint: usize) -> Dataset {
        // Schema sized so num_features/num_labels are large enough.
        let num_features = rows.first().map(|r| r.len()).unwrap_or(1);
        // num_features = 1 + 4t  =>  t = (f-1)/4; ensure at least hint labels.
        let t = ((num_features.saturating_sub(1)) / 4).max(num_labels_hint);
        let schema = FeatureSchema {
            num_templates: t,
            num_vm_types: 1,
        };
        let mut padded = rows;
        for r in &mut padded {
            r.resize(schema.num_features(), 0.0);
        }
        Dataset {
            schema,
            rows: padded,
            labels,
        }
    }

    #[test]
    fn learns_a_single_threshold() {
        // label = value >= 5.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        assert_eq!(tree.predict(&vec![3.0; ds.schema.num_features()]), 0);
        assert_eq!(tree.predict(&vec![7.0; ds.schema.num_features()]), 1);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise; feature 1 decides the label.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let noise = (i * 7 % 11) as f64;
            let signal = if i % 2 == 0 { 0.0 } else { 10.0 };
            rows.push(vec![noise, signal]);
            labels.push(i % 2);
        }
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        match tree.root_split() {
            Some((feature, _)) => assert_eq!(feature, 1),
            None => panic!("expected a split at the root"),
        }
    }

    #[test]
    fn handles_infinite_feature_values() {
        // cost-like feature: finite => label 0, infinite => label 1.
        let rows = vec![
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![f64::INFINITY],
            vec![f64::INFINITY],
            vec![f64::INFINITY],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(
            &ds,
            &TreeParams {
                min_split: 2,
                min_leaf: 1,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.accuracy(&ds), 1.0);
        let nf = ds.schema.num_features();
        assert_eq!(tree.predict(&vec![100.0; nf]), 0);
        assert_eq!(tree.predict(&vec![f64::INFINITY; nf]), 1);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Labels are pure noise: an unpruned tree might split; a pruned one
        // should collapse to (or stay) a single leaf.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 7) as f64]).collect();
        let labels: Vec<usize> = (0..50).map(|i| (i * 13 + 5) % 2).collect();
        let ds = synthetic(rows, labels, 2);
        let pruned = DecisionTree::train(&ds, &TreeParams::default());
        let unpruned = DecisionTree::train(
            &ds,
            &TreeParams {
                prune: false,
                min_leaf: 1,
                min_split: 2,
                ..TreeParams::default()
            },
        );
        assert!(pruned.num_nodes() <= unpruned.num_nodes());
        assert!(pruned.num_leaves() <= 3, "noise should prune hard");
    }

    #[test]
    fn max_depth_and_min_leaf_are_respected() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| (i / 8) % 2).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 2,
                prune: false,
                ..TreeParams::default()
            },
        );
        assert!(tree.depth() <= 2);

        let stump = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        );
        assert_eq!(stump.depth(), 0);
        assert_eq!(stump.num_leaves(), 1);
        assert!(stump.root_split().is_none());
    }

    #[test]
    fn multiclass_labels() {
        // Three bands -> three labels.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let ds = synthetic(rows, labels, 3);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        let nf = ds.schema.num_features();
        assert_eq!(tree.predict(&vec![5.0; nf]), 0);
        assert_eq!(tree.predict(&vec![15.0; nf]), 1);
        assert_eq!(tree.predict(&vec![25.0; nf]), 2);
    }

    #[test]
    fn flat_preorder_invariants() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| (i / 8) % 2).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(
            &ds,
            &TreeParams {
                prune: false,
                ..TreeParams::default()
            },
        );
        assert!(tree.validate().is_ok());
        assert_eq!(tree.num_nodes(), 2 * tree.num_leaves() - 1);
    }

    #[test]
    fn serde_round_trip() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
        let nf = ds.schema.num_features();
        assert_eq!(back.predict(&vec![3.0; nf]), tree.predict(&vec![3.0; nf]));
    }

    #[test]
    fn legacy_recursive_json_still_loads() {
        // A model serialized by the pre-flat representation: recursive
        // externally-tagged nodes under `root`.
        let legacy = r#"{
            "root": {"Split": {
                "feature": 0,
                "threshold": 4.5,
                "left": {"Leaf": {"label": 0, "samples": 5, "errors": 0}},
                "right": {"Split": {
                    "feature": 1,
                    "threshold": 2.0,
                    "left": {"Leaf": {"label": 1, "samples": 3, "errors": 1}},
                    "right": {"Leaf": {"label": 2, "samples": 4, "errors": 0}}
                }}
            }},
            "num_features": 9,
            "num_labels": 3
        }"#;
        let tree: DecisionTree = serde_json::from_str(legacy).unwrap();
        assert_eq!(tree.num_nodes(), 5);
        assert_eq!(tree.num_leaves(), 3);
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.root_split(), Some((0, 4.5)));
        let nf = tree.num_features;
        let mut row = vec![0.0; nf];
        assert_eq!(tree.predict(&row), 0);
        row[0] = 5.0;
        row[1] = 1.0;
        assert_eq!(tree.predict(&row), 1);
        row[1] = 3.0;
        assert_eq!(tree.predict(&row), 2);
        // Legacy loads re-serialize in the flat format and round-trip.
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
        // Render shows per-leaf stats preserved from the legacy form.
        let text = tree.render(&|f| format!("f{f}"), &|l| format!("a{l}"));
        assert!(text.contains("(3 samples, 1 errors)"));
    }

    #[test]
    fn malformed_trees_are_rejected() {
        // Right child pointing backwards must not deserialize (it would make
        // `predict` loop forever).
        let bad = r#"{
            "num_features": 2, "num_labels": 2,
            "feature": [0, 4294967295, 4294967295],
            "threshold": [1.0, 0.0, 0.0],
            "right": [0, 0, 1],
            "samples": [2, 1, 1],
            "errors": [0, 0, 0]
        }"#;
        assert!(serde_json::from_str::<DecisionTree>(bad).is_err());
        // Mismatched array lengths are rejected too.
        let ragged = r#"{
            "num_features": 2, "num_labels": 2,
            "feature": [4294967295],
            "threshold": [],
            "right": [0],
            "samples": [1],
            "errors": [0]
        }"#;
        assert!(serde_json::from_str::<DecisionTree>(ragged).is_err());
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[10, 0], 10), 0.0);
        assert!((entropy(&[5, 5], 10) - 1.0).abs() < 1e-12);
        assert!(entropy(&[9, 1], 10) < 1.0);
        assert_eq!(entropy(&[], 0), 0.0);
    }

    #[test]
    fn normal_inverse_known_values() {
        assert!((normal_inverse(0.5)).abs() < 1e-9);
        assert!((normal_inverse(0.75) - 0.674_489_750_196_081_7).abs() < 1e-7);
        assert!((normal_inverse(0.975) - 1.959_963_984_540_054).abs() < 1e-7);
        assert!((normal_inverse(0.025) + 1.959_963_984_540_054).abs() < 1e-7);
    }

    #[test]
    fn add_errs_matches_j48_semantics() {
        // Zero observed errors still get a positive correction.
        assert!(add_errs(10.0, 0.0, 0.25) > 0.0);
        // More data, same error rate => smaller correction rate.
        let small = add_errs(10.0, 1.0, 0.25) / 10.0;
        let large = add_errs(1000.0, 100.0, 0.25) / 1000.0;
        assert!(large < small);
        // CF above 0.5 disables the correction.
        assert_eq!(add_errs(10.0, 3.0, 0.6), 0.0);
        // Nearly-all-errors leaf caps at n - e.
        assert!(add_errs(10.0, 9.6, 0.25) <= 0.4 + 1e-12);
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let m = midpoint(1.0, 2.0);
        assert!(m > 1.0 && m <= 2.0);
        assert_eq!(midpoint(1.0, f64::INFINITY), f64::MAX);
        // Adjacent floats degrade gracefully to the upper value.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        let m = midpoint(lo, hi);
        assert!(m > lo && m <= hi);
    }

    #[test]
    fn render_mentions_features_and_labels() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        let text = tree.render(&|f| format!("f{f}"), &|l| format!("action{l}"));
        assert!(text.contains("f0 <"));
        assert!(text.contains("action0"));
        assert!(text.contains("action1"));
    }
}
