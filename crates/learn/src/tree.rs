//! A hand-rolled C4.5/J48-style decision-tree learner.
//!
//! The paper trains its workload-management models with Weka's J48 (§7.1),
//! i.e. C4.5: top-down induction with gain-ratio split selection and
//! confidence-based (pessimistic) error pruning. No adequate Rust crate
//! exists for this, so the learner is implemented here from scratch:
//!
//! * binary splits `feature < threshold` on numeric columns (booleans are
//!   encoded 0/1, infinities — the `cost-of-X = ∞` case — sort after every
//!   finite value and split off naturally);
//! * split selection by **gain ratio** (information gain normalized by split
//!   entropy), C4.5's guard against many-valued features;
//! * **pessimistic pruning** with the Wilson-style upper confidence bound on
//!   the leaf error rate (J48's `addErrs`, default CF = 0.25), applied
//!   bottom-up during induction (subtree replacement; subtree raising is not
//!   implemented).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Induction and pruning parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
    /// Minimum number of training examples in each child of a split
    /// (J48's `minNumObj`, default 2).
    pub min_leaf: usize,
    /// Minimum number of examples at a node to attempt a split.
    pub min_split: usize,
    /// Whether to apply pessimistic pruning.
    pub prune: bool,
    /// Pruning confidence factor (J48's `CF`, default 0.25; smaller prunes
    /// more aggressively).
    pub confidence: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 40,
            min_leaf: 2,
            min_split: 4,
            prune: true,
            confidence: 0.25,
        }
    }
}

/// A node of the learned tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Terminal node predicting `label`.
    Leaf {
        /// Predicted label (majority of the training examples here).
        label: usize,
        /// Training examples that reached this leaf.
        samples: usize,
        /// Of those, how many had a different label.
        errors: usize,
    },
    /// Binary test `features[feature] < threshold`.
    Split {
        /// Column index into the feature vector.
        feature: usize,
        /// Examples with `value < threshold` go left, the rest right.
        threshold: f64,
        /// Subtree for `value < threshold`.
        left: Box<TreeNode>,
        /// Subtree for `value >= threshold`.
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn num_leaves(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { left, right, .. } => left.num_leaves() + right.num_leaves(),
        }
    }

    fn num_nodes(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { left, right, .. } => 1 + left.num_nodes() + right.num_nodes(),
        }
    }

    /// Pessimistic error estimate of the subtree: per-leaf observed errors
    /// plus the confidence correction.
    fn pessimistic_errors(&self, confidence: f64) -> f64 {
        match self {
            TreeNode::Leaf {
                samples, errors, ..
            } => *errors as f64 + add_errs(*samples as f64, *errors as f64, confidence),
            TreeNode::Split { left, right, .. } => {
                left.pessimistic_errors(confidence) + right.pessimistic_errors(confidence)
            }
        }
    }
}

/// A trained decision tree mapping feature vectors to decision labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: TreeNode,
    num_features: usize,
    num_labels: usize,
}

impl DecisionTree {
    /// Trains a tree on `dataset`.
    ///
    /// # Panics
    /// Panics if the dataset is empty (there is nothing to learn from).
    pub fn train(dataset: &Dataset, params: &TreeParams) -> DecisionTree {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut span = wisedb_obs::span("learn.fit_tree");
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        let builder = Builder { dataset, params };
        let root = builder.build(&mut indices, 0);
        let tree = DecisionTree {
            root,
            num_features: dataset.schema.num_features(),
            num_labels: dataset.schema.num_labels(),
        };
        if span.recording() {
            span.attr_u64("rows", dataset.len() as u64);
            span.attr_u64("nodes", tree.num_nodes() as u64);
            span.attr_u64("depth", tree.depth() as u64);
        }
        tree
    }

    /// Predicts the decision label for a feature vector.
    ///
    /// # Panics
    /// Panics if `features` is shorter than the training schema.
    pub fn predict(&self, features: &[f64]) -> usize {
        assert!(
            features.len() >= self.num_features,
            "feature vector has {} columns, tree expects {}",
            features.len(),
            self.num_features
        );
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { label, .. } => return *label,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] < *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Fraction of `dataset` rows the tree classifies correctly.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 1.0;
        }
        let correct = dataset
            .rows
            .iter()
            .zip(&dataset.labels)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / dataset.len() as f64
    }

    /// Height of the tree (a lone leaf has depth 0). The paper observes its
    /// trees stay shallow (h < 30), which bounds scheduling to `O(h·n)`.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.root.num_leaves()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.root.num_nodes()
    }

    /// Number of decision labels the tree can emit.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The root node (for inspection/rendering).
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// Renders the tree as indented text, in the spirit of Figure 6.
    pub fn render(
        &self,
        feature_name: &dyn Fn(usize) -> String,
        label_name: &dyn Fn(usize) -> String,
    ) -> String {
        fn go(
            node: &TreeNode,
            indent: usize,
            out: &mut String,
            feature_name: &dyn Fn(usize) -> String,
            label_name: &dyn Fn(usize) -> String,
        ) {
            let pad = "  ".repeat(indent);
            match node {
                TreeNode::Leaf {
                    label,
                    samples,
                    errors,
                } => {
                    out.push_str(&format!(
                        "{pad}=> {} ({samples} samples, {errors} errors)\n",
                        label_name(*label)
                    ));
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push_str(&format!(
                        "{pad}{} < {threshold:.6}?\n",
                        feature_name(*feature)
                    ));
                    out.push_str(&format!("{pad}yes:\n"));
                    go(left, indent + 1, out, feature_name, label_name);
                    out.push_str(&format!("{pad}no:\n"));
                    go(right, indent + 1, out, feature_name, label_name);
                }
            }
        }
        let mut out = String::new();
        go(&self.root, 0, &mut out, feature_name, label_name);
        out
    }
}

struct Builder<'a> {
    dataset: &'a Dataset,
    params: &'a TreeParams,
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain_ratio: f64,
}

impl Builder<'_> {
    fn label_counts(&self, idx: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.dataset.schema.num_labels()];
        for &i in idx {
            counts[self.dataset.labels[i]] += 1;
        }
        counts
    }

    fn build(&self, idx: &mut [usize], depth: usize) -> TreeNode {
        let counts = self.label_counts(idx);
        let (majority, majority_count) = argmax(&counts);
        let errors = idx.len() - majority_count;
        let leaf = TreeNode::Leaf {
            label: majority,
            samples: idx.len(),
            errors,
        };
        if errors == 0 || idx.len() < self.params.min_split || depth >= self.params.max_depth {
            return leaf;
        }
        let Some(split) = self.best_split(idx, &counts) else {
            return leaf;
        };
        // Partition indices in place: left = `< threshold`.
        let mut mid = 0;
        for i in 0..idx.len() {
            if self.dataset.rows[idx[i]][split.feature] < split.threshold {
                idx.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < idx.len());
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        let node = TreeNode::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: Box::new(left),
            right: Box::new(right),
        };
        if self.params.prune {
            let subtree_errs = node.pessimistic_errors(self.params.confidence);
            let leaf_errs =
                errors as f64 + add_errs(idx.len() as f64, errors as f64, self.params.confidence);
            // J48's subtree-replacement rule (with its 0.1 slack).
            if leaf_errs <= subtree_errs + 0.1 {
                return leaf;
            }
        }
        node
    }

    fn best_split(&self, idx: &[usize], counts: &[usize]) -> Option<SplitChoice> {
        let n = idx.len() as f64;
        let base_entropy = entropy(counts, idx.len());
        let mut best: Option<SplitChoice> = None;

        let num_features = self.dataset.schema.num_features();
        let mut order: Vec<usize> = idx.to_vec();
        for feature in 0..num_features {
            order.sort_unstable_by(|&a, &b| {
                self.dataset.rows[a][feature].total_cmp(&self.dataset.rows[b][feature])
            });
            let mut left_counts = vec![0usize; counts.len()];
            let mut left_n = 0usize;
            for w in 0..order.len() - 1 {
                let row = order[w];
                left_counts[self.dataset.labels[row]] += 1;
                left_n += 1;
                let v = self.dataset.rows[row][feature];
                let v_next = self.dataset.rows[order[w + 1]][feature];
                if v_next <= v {
                    continue; // not a boundary between distinct values
                }
                let right_n = idx.len() - left_n;
                if left_n < self.params.min_leaf || right_n < self.params.min_leaf {
                    continue;
                }
                let h_left = entropy(&left_counts, left_n);
                let right_counts: Vec<usize> = counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&c, &l)| c - l)
                    .collect();
                let h_right = entropy(&right_counts, right_n);
                let gain =
                    base_entropy - (left_n as f64 / n) * h_left - (right_n as f64 / n) * h_right;
                if gain <= 1e-12 {
                    continue;
                }
                let pl = left_n as f64 / n;
                let pr = right_n as f64 / n;
                let split_info = -(pl * pl.log2() + pr * pr.log2());
                if split_info <= 1e-12 {
                    continue;
                }
                let gain_ratio = gain / split_info;
                let better = match &best {
                    None => true,
                    Some(b) => {
                        gain_ratio > b.gain_ratio + 1e-12
                            || (gain_ratio > b.gain_ratio - 1e-12 && feature < b.feature)
                    }
                };
                if better {
                    let threshold = midpoint(v, v_next);
                    best = Some(SplitChoice {
                        feature,
                        threshold,
                        gain_ratio,
                    });
                }
            }
        }
        best
    }
}

fn argmax(counts: &[usize]) -> (usize, usize) {
    let mut best = (0usize, 0usize);
    for (i, &c) in counts.iter().enumerate() {
        if c > best.1 {
            best = (i, c);
        }
    }
    best
}

/// Shannon entropy (bits) of a label distribution.
fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Midpoint threshold between two consecutive distinct values, robust to
/// infinities (`cost-of-X = ∞`) and float rounding. Splits are `value < t`.
fn midpoint(lo: f64, hi: f64) -> f64 {
    if !hi.is_finite() {
        // Everything finite goes left, infinite right.
        return f64::MAX;
    }
    let mid = lo + (hi - lo) / 2.0;
    if mid > lo {
        mid
    } else {
        hi
    }
}

/// J48's `addErrs`: the expected number of *additional* errors at a leaf of
/// `n` examples with `e` observed errors, at confidence factor `cf`, using
/// the upper bound of the binomial confidence interval (normal
/// approximation with continuity correction).
fn add_errs(n: f64, e: f64, cf: f64) -> f64 {
    if cf > 0.5 {
        return 0.0;
    }
    if e == 0.0 {
        return n * (1.0 - cf.powf(1.0 / n));
    }
    if e < 1.0 {
        let base = n * (1.0 - cf.powf(1.0 / n));
        return base + e * (add_errs(n, 1.0, cf) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = normal_inverse(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (r * n) - e
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 over (0, 1)).
fn normal_inverse(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inverse domain is (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSchema;

    /// A dataset with a hand-built schema (bypassing feature extraction) so
    /// learner behaviour can be tested in isolation.
    fn synthetic(rows: Vec<Vec<f64>>, labels: Vec<usize>, num_labels_hint: usize) -> Dataset {
        // Schema sized so num_features/num_labels are large enough.
        let num_features = rows.first().map(|r| r.len()).unwrap_or(1);
        // num_features = 1 + 4t  =>  t = (f-1)/4; ensure at least hint labels.
        let t = ((num_features.saturating_sub(1)) / 4).max(num_labels_hint);
        let schema = FeatureSchema {
            num_templates: t,
            num_vm_types: 1,
        };
        let mut padded = rows;
        for r in &mut padded {
            r.resize(schema.num_features(), 0.0);
        }
        Dataset {
            schema,
            rows: padded,
            labels,
        }
    }

    #[test]
    fn learns_a_single_threshold() {
        // label = value >= 5.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        assert_eq!(tree.predict(&vec![3.0; ds.schema.num_features()]), 0);
        assert_eq!(tree.predict(&vec![7.0; ds.schema.num_features()]), 1);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise; feature 1 decides the label.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let noise = (i * 7 % 11) as f64;
            let signal = if i % 2 == 0 { 0.0 } else { 10.0 };
            rows.push(vec![noise, signal]);
            labels.push(i % 2);
        }
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        match tree.root() {
            TreeNode::Split { feature, .. } => assert_eq!(*feature, 1),
            _ => panic!("expected a split at the root"),
        }
    }

    #[test]
    fn handles_infinite_feature_values() {
        // cost-like feature: finite => label 0, infinite => label 1.
        let rows = vec![
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![f64::INFINITY],
            vec![f64::INFINITY],
            vec![f64::INFINITY],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(
            &ds,
            &TreeParams {
                min_split: 2,
                min_leaf: 1,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.accuracy(&ds), 1.0);
        let nf = ds.schema.num_features();
        assert_eq!(tree.predict(&vec![100.0; nf]), 0);
        assert_eq!(tree.predict(&vec![f64::INFINITY; nf]), 1);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Labels are pure noise: an unpruned tree might split; a pruned one
        // should collapse to (or stay) a single leaf.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 7) as f64]).collect();
        let labels: Vec<usize> = (0..50).map(|i| (i * 13 + 5) % 2).collect();
        let ds = synthetic(rows, labels, 2);
        let pruned = DecisionTree::train(&ds, &TreeParams::default());
        let unpruned = DecisionTree::train(
            &ds,
            &TreeParams {
                prune: false,
                min_leaf: 1,
                min_split: 2,
                ..TreeParams::default()
            },
        );
        assert!(pruned.num_nodes() <= unpruned.num_nodes());
        assert!(pruned.num_leaves() <= 3, "noise should prune hard");
    }

    #[test]
    fn max_depth_and_min_leaf_are_respected() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| (i / 8) % 2).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 2,
                prune: false,
                ..TreeParams::default()
            },
        );
        assert!(tree.depth() <= 2);

        let stump = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        );
        assert_eq!(stump.depth(), 0);
        assert_eq!(stump.num_leaves(), 1);
    }

    #[test]
    fn multiclass_labels() {
        // Three bands -> three labels.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let ds = synthetic(rows, labels, 3);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(tree.accuracy(&ds), 1.0);
        let nf = ds.schema.num_features();
        assert_eq!(tree.predict(&vec![5.0; nf]), 0);
        assert_eq!(tree.predict(&vec![15.0; nf]), 1);
        assert_eq!(tree.predict(&vec![25.0; nf]), 2);
    }

    #[test]
    fn serde_round_trip() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
        let nf = ds.schema.num_features();
        assert_eq!(back.predict(&vec![3.0; nf]), tree.predict(&vec![3.0; nf]));
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[10, 0], 10), 0.0);
        assert!((entropy(&[5, 5], 10) - 1.0).abs() < 1e-12);
        assert!(entropy(&[9, 1], 10) < 1.0);
        assert_eq!(entropy(&[], 0), 0.0);
    }

    #[test]
    fn normal_inverse_known_values() {
        assert!((normal_inverse(0.5)).abs() < 1e-9);
        assert!((normal_inverse(0.75) - 0.674_489_750_196_081_7).abs() < 1e-7);
        assert!((normal_inverse(0.975) - 1.959_963_984_540_054).abs() < 1e-7);
        assert!((normal_inverse(0.025) + 1.959_963_984_540_054).abs() < 1e-7);
    }

    #[test]
    fn add_errs_matches_j48_semantics() {
        // Zero observed errors still get a positive correction.
        assert!(add_errs(10.0, 0.0, 0.25) > 0.0);
        // More data, same error rate => smaller correction rate.
        let small = add_errs(10.0, 1.0, 0.25) / 10.0;
        let large = add_errs(1000.0, 100.0, 0.25) / 1000.0;
        assert!(large < small);
        // CF above 0.5 disables the correction.
        assert_eq!(add_errs(10.0, 3.0, 0.6), 0.0);
        // Nearly-all-errors leaf caps at n - e.
        assert!(add_errs(10.0, 9.6, 0.25) <= 0.4 + 1e-12);
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let m = midpoint(1.0, 2.0);
        assert!(m > 1.0 && m <= 2.0);
        assert_eq!(midpoint(1.0, f64::INFINITY), f64::MAX);
        // Adjacent floats degrade gracefully to the upper value.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        let m = midpoint(lo, hi);
        assert!(m > lo && m <= hi);
    }

    #[test]
    fn render_mentions_features_and_labels() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let ds = synthetic(rows, labels, 2);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        let text = tree.render(&|f| format!("f{f}"), &|l| format!("action{l}"));
        assert!(text.contains("f0 <"));
        assert!(text.contains("action0"));
        assert!(text.contains("action1"));
    }
}
