//! The event loop: a virtual-clock online workload-management service.
//!
//! [`WorkloadService`] wires the pieces into the §6.3 loop, run as a
//! continuously stepped process instead of a batch replay:
//!
//! 1. an arrival fires (from a stream or an [`ArrivalProcess`]), tagged
//!    with its tenant's SLA class;
//! 2. the live cluster advances to the arrival instant — queued queries
//!    start, finished ones complete and feed the metrics;
//! 3. admission control inspects the load (including the arriving class's
//!    priority and queue depth) and may shed the arrival;
//! 4. every *unstarted query of the same class* is recalled from the
//!    cluster and replanned together with the newcomer by that class's
//!    decision model ([`MultiScheduler::plan_arrivals`]); other classes'
//!    queued placements stay put;
//! 5. the plan's provision/assign steps are dispatched back onto the
//!    shared cluster, which bills them — attributed to the class — as
//!    they execute.
//!
//! A single-class service (what [`train`](WorkloadService::train) builds)
//! degenerates to the original single-goal pipeline **bit-identically**:
//! recalling "the arrival's class" recalls everything, the one model plans
//! every batch, and the per-class metrics row mirrors the fleet totals
//! (asserted by `tests/multitenant_e2e.rs`).
//!
//! Everything is deterministic under a fixed seed — same stream, same
//! placements, same bill — except scheduler *decision latency*, which is
//! measured wall-clock and reported but never steers the simulation.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wisedb_advisor::multi::MultiScheduler;
use wisedb_advisor::online::{
    ArrivalPlan, ClusterView, OnlineConfig, OnlineScheduler, PendingArrival, PlannedStep,
};
use wisedb_advisor::{DecisionModel, TrainingArtifacts};
use wisedb_core::{
    ArrivingQuery, CoreError, CoreResult, GoalHandle, MetricsSnapshot, Millis, QueryId, SlaClass,
    SpecHandle, TemplateId, TenantId, VmTypeId, WorkloadSpec,
};
use wisedb_sim::{Completion, LiveCluster, LiveOptions, RecalledQuery};

use crate::admission::{AdmissionPolicy, LoadStatus};
use crate::arrivals::ArrivalProcess;
use crate::metrics::MetricsCollector;

/// Configuration of a [`WorkloadService`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Online scheduling configuration (planner, Reuse/Shift, training,
    /// cache capacity) — applied to every class's scheduler.
    pub online: OnlineConfig,
    /// The overload valve.
    pub admission: AdmissionPolicy,
    /// Cluster execution options (start-up delays, latency noise).
    pub cluster: LiveOptions,
    /// Seed for arrival generation in
    /// [`run_process`](WorkloadService::run_process).
    pub seed: u64,
    /// Take an interim [`MetricsSnapshot`] every `snapshot_every` offered
    /// arrivals (`0` = final snapshot only).
    pub snapshot_every: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            online: OnlineConfig::default(),
            admission: AdmissionPolicy::AcceptAll,
            cluster: LiveOptions::default(),
            seed: 0x57EA_4,
            snapshot_every: 0,
        }
    }
}

/// What became of one offered arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Admitted and planned onto the fleet.
    Admitted,
    /// Dropped by admission control (graceful degradation, not an error).
    Shed,
}

/// What a finished stream run reports.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Interim snapshots (one per `snapshot_every` arrivals, if enabled).
    pub snapshots: Vec<MetricsSnapshot>,
    /// The final snapshot, after draining all queued work.
    pub last: MetricsSnapshot,
    /// Every completed execution, in completion order.
    pub completions: Vec<Completion>,
}

/// A streaming online workload-management service over a virtual clock,
/// scheduling one or more tenant SLA classes onto one shared fleet.
pub struct WorkloadService {
    scheduler: MultiScheduler,
    core: ServiceCore,
}

/// Everything of the service *except* the planner: the live cluster, the
/// metrics collector, and the arrival/completion ledgers, plus the staged
/// offer pipeline (admit → prepare → validate → apply → rollback) those
/// books drive.
///
/// [`WorkloadService`] and the sharded service
/// ([`ShardedService`](crate::ShardedService)) both own exactly one
/// `ServiceCore` and differ only in *who* runs `plan_arrivals` between
/// the stages — one `MultiScheduler` inline, or per-class schedulers on
/// worker threads. Keeping every stage here is what makes the 1-shard
/// case bit-identical to the unsharded service: both walk the same code.
pub(crate) struct ServiceCore {
    pub(crate) cluster: LiveCluster,
    pub(crate) metrics: MetricsCollector,
    pub(crate) config: RuntimeConfig,
    /// Original arrival time per admitted query, indexed by [`QueryId`].
    /// (The query's SLA class needs no sibling table: it rides the cluster
    /// queue entries into each [`Completion`].)
    pub(crate) arrival_of: Vec<Millis>,
    /// Completions observed so far (completion order).
    pub(crate) completions: Vec<Completion>,
}

impl WorkloadService {
    /// Trains a base model for `(spec, goal)` and opens a single-class
    /// service — the legacy single-goal shape. Accepts owned values or
    /// shared handles; either way the scheduler, cluster, and metrics
    /// layers end up sharing one spec/goal allocation.
    pub fn train(
        spec: impl Into<SpecHandle>,
        goal: impl Into<GoalHandle>,
        config: RuntimeConfig,
    ) -> CoreResult<Self> {
        WorkloadService::train_classes(spec, vec![SlaClass::solo(goal.into())], config)
    }

    /// Trains one base model per SLA class (`classes[i]` is
    /// [`TenantId`]`(i)`) and opens a multi-tenant service: every class's
    /// arrivals are planned by its own model, all contending for one
    /// shared fleet.
    pub fn train_classes(
        spec: impl Into<SpecHandle>,
        classes: Vec<SlaClass>,
        config: RuntimeConfig,
    ) -> CoreResult<Self> {
        let scheduler = MultiScheduler::train(spec, classes, config.online.clone())?;
        Ok(Self::with_multi(scheduler, config))
    }

    /// Opens a single-class service around an already-trained scheduler.
    pub fn with_scheduler(scheduler: OnlineScheduler, config: RuntimeConfig) -> Self {
        let goal: GoalHandle = scheduler.base_model().goal_handle().clone();
        let multi = MultiScheduler::with_schedulers(
            vec![SlaClass::solo(goal)],
            vec![scheduler],
            config.online.clone(),
        )
        .expect("one class, one scheduler, shared spec");
        Self::with_multi(multi, config)
    }

    /// Opens a service around a pre-built multi-class scheduler.
    pub fn with_multi(scheduler: MultiScheduler, config: RuntimeConfig) -> Self {
        let spec: SpecHandle = scheduler.spec_handle().clone();
        let classes = scheduler.classes().to_vec();
        WorkloadService {
            scheduler,
            core: ServiceCore::new(spec, classes, config),
        }
    }

    /// Splits the service into its planner and its books — the seam the
    /// sharded service is built on.
    pub(crate) fn into_parts(self) -> (MultiScheduler, ServiceCore) {
        (self.scheduler, self.core)
    }

    /// Reassembles a service from parts (the inverse of
    /// [`into_parts`](Self::into_parts): same scheduler, same books, no
    /// state reset).
    pub(crate) fn from_parts(scheduler: MultiScheduler, core: ServiceCore) -> Self {
        WorkloadService { scheduler, core }
    }

    /// The workload specification in force.
    pub fn spec(&self) -> &WorkloadSpec {
        self.core.cluster.spec()
    }

    /// The configured SLA classes, indexed by [`TenantId`].
    pub fn classes(&self) -> &[SlaClass] {
        self.scheduler.classes()
    }

    /// One class's scheduler (base model + caches).
    pub fn scheduler(&self, class: TenantId) -> CoreResult<&OnlineScheduler> {
        self.scheduler.scheduler(class)
    }

    /// The current virtual time.
    pub fn now(&self) -> Millis {
        self.core.cluster.now()
    }

    /// The configuration the service was opened with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.core.config
    }

    /// The live cluster session (fleet state, running bill).
    pub fn cluster(&self) -> &LiveCluster {
        &self.core.cluster
    }

    /// Hot-swaps one class's decision model — the background-retraining
    /// hook: train a drift-adapted model off the event loop (the
    /// `DriftProcess` + `ModelConfig::threads` machinery), then swap it in
    /// without stopping the service. The new model (fresh Reuse/Shift
    /// caches) takes effect on the **next arrival**; in-flight and queued
    /// queries are untouched. The model must match the service's spec and
    /// the class's goal.
    pub fn swap_model(
        &mut self,
        class: TenantId,
        model: DecisionModel,
        artifacts: TrainingArtifacts,
    ) -> CoreResult<()> {
        let result = self.scheduler.swap_model(class, model, artifacts);
        wisedb_obs::counter_add("wisedb_runtime_model_swaps_total", 1);
        wisedb_obs::instant("runtime.swap_model")
            .virt(self.core.cluster.now())
            .attr_u64("class", class.index() as u64)
            .attr_bool("applied", result.is_ok())
            .emit();
        result
    }

    /// Offers one arrival of the default class at virtual time `at`
    /// (monotone across calls). Returns `true` if admitted, `false` if
    /// shed.
    pub fn offer(&mut self, template: TemplateId, at: Millis) -> CoreResult<bool> {
        self.offer_as(template, TenantId::DEFAULT, at)
    }

    /// Offers one arrival of an SLA class at virtual time `at` (monotone
    /// across calls). Returns `true` if admitted, `false` if shed by
    /// admission control. Errors if the class is unknown or the template
    /// is outside the class's declared subset.
    pub fn offer_as(
        &mut self,
        template: TemplateId,
        class: TenantId,
        at: Millis,
    ) -> CoreResult<bool> {
        let outcomes = self.offer_batch_as(class, &[(template, at)])?;
        Ok(outcomes[0] == OfferOutcome::Admitted)
    }

    /// Offers a burst of same-class arrivals (`(template, at)` pairs in
    /// non-decreasing `at` order), coalescing every admitted newcomer into
    /// **one** `plan_arrivals` call instead of one per arrival — the
    /// request-batching path a network server takes when load outruns the
    /// scheduler thread (drain the queue, plan once).
    ///
    /// Each arrival still advances the clock and passes through admission
    /// individually (earlier newcomers of the same burst count toward the
    /// later ones' queue-depth signals), so a one-element burst is
    /// **bit-identical** to [`offer_as`](WorkloadService::offer_as) —
    /// asserted by tests. Admitted arrivals are then planned together with
    /// the class's recalled pending work at the last admitted instant.
    ///
    /// On error the planning rollback restores recalled queries and drops
    /// the whole burst's newcomers; arrivals shed before the error keep
    /// their rejection counts.
    pub fn offer_batch_as(
        &mut self,
        class: TenantId,
        arrivals: &[(TemplateId, Millis)],
    ) -> CoreResult<Vec<OfferOutcome>> {
        if arrivals.is_empty() {
            return Ok(Vec::new());
        }
        let mut batch_span = wisedb_obs::span("runtime.offer_batch");
        if batch_span.recording() {
            batch_span.attr_u64("class", class.index() as u64);
            batch_span.attr_u64("arrivals", arrivals.len() as u64);
            batch_span.virt(arrivals[arrivals.len() - 1].1);
        }
        let sla = self.scheduler.class(class)?;
        for &(template, _) in arrivals {
            if !sla.allows(template) {
                return Err(CoreError::TemplateNotInClass { template, class });
            }
        }
        let priority = sla.priority;

        let WorkloadService { scheduler, core } = self;
        offer_batch_with(core, class, priority, arrivals, |view, batch, at| {
            scheduler.plan_arrivals(class, view, batch, at)
        })
    }

    /// Checks a plan against the live cluster before applying it; see
    /// [`ServiceCore::validate_plan`].
    #[cfg(test)]
    fn validate_plan(&self, plan: &ArrivalPlan, target_type: Option<VmTypeId>) -> CoreResult<()> {
        self.core.validate_plan(plan, target_type)
    }

    /// Runs everything still queued to completion.
    pub fn drain(&mut self) {
        self.core.drain();
    }

    /// A metrics snapshot at the current virtual instant, with per-class
    /// rows carrying the cluster's dollar attribution.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    /// Completions observed so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.core.completions
    }

    /// Replays an explicit arrival stream (possibly multi-class — each
    /// arrival's tag routes it) through the loop, then drains.
    pub fn run_stream(&mut self, stream: &[ArrivingQuery]) -> CoreResult<StreamReport> {
        let mut snapshots = Vec::new();
        for (i, arrival) in stream.iter().enumerate() {
            self.offer_as(arrival.template, arrival.class, arrival.arrival)?;
            let every = self.core.config.snapshot_every;
            if every > 0 && (i + 1) % every == 0 {
                snapshots.push(self.snapshot());
            }
        }
        self.drain();
        Ok(StreamReport {
            snapshots,
            last: self.snapshot(),
            completions: self.core.completions.clone(),
        })
    }

    /// Draws `n` arrivals from `process` (seeded by the config, tagged
    /// with the default class) and runs them through the loop, then
    /// drains.
    pub fn run_process(
        &mut self,
        process: &mut dyn ArrivalProcess,
        n: usize,
    ) -> CoreResult<StreamReport> {
        let mut rng = StdRng::seed_from_u64(self.core.config.seed);
        let mut snapshots = Vec::new();
        let mut now = self.core.cluster.now();
        for i in 0..n {
            let (gap, template) = process.next(now, &mut rng);
            now += gap;
            self.offer(template, now)?;
            let every = self.core.config.snapshot_every;
            if every > 0 && (i + 1) % every == 0 {
                snapshots.push(self.snapshot());
            }
        }
        self.drain();
        Ok(StreamReport {
            snapshots,
            last: self.snapshot(),
            completions: self.core.completions.clone(),
        })
    }
}

/// The single-burst offer pipeline with the planner abstracted out:
/// admit each arrival (advancing the clock), assign ids and recall the
/// class's unstarted work, build the live [`ClusterView`], call
/// `plan_fn` on the batch, then validate + apply the plan (or roll the
/// recall back on failure).
///
/// [`WorkloadService::offer_batch_as`] passes its `MultiScheduler` as
/// `plan_fn`; the sharded service's single-group path passes the class's
/// own scheduler. Both therefore run *this exact code* stage for stage —
/// which is the mechanism behind the 1-shard bit-identity guarantee, not
/// just an argument about equivalent implementations.
pub(crate) fn offer_batch_with(
    core: &mut ServiceCore,
    class: TenantId,
    priority: u8,
    arrivals: &[(TemplateId, Millis)],
    plan_fn: impl FnOnce(&ClusterView, &[PendingArrival], Millis) -> CoreResult<ArrivalPlan>,
) -> CoreResult<Vec<OfferOutcome>> {
    let (outcomes, admitted) = core.admit_burst(class, priority, arrivals, 0, 0);
    let Some(&(_, planned_at)) = admitted.last() else {
        return Ok(outcomes);
    };
    let (first_id, batch, recalled) = core.prepare_batch(class, &admitted);

    let open = core.cluster.open_vm();
    // Assignments before the first provision step go to the open VM.
    let target = open.as_ref().map(|(index, _)| *index);
    let target_type = open.as_ref().map(|(_, view)| view.vm_type);
    let view = ClusterView {
        vms_rented: core.cluster.vms_provisioned() as u32,
        open_vm: open.map(|(_, view)| view),
    };

    let started = Instant::now();
    let mut plan_span = wisedb_obs::span("runtime.plan");
    if plan_span.recording() {
        plan_span.attr_u64("batch", batch.len() as u64);
        plan_span.attr_u64("recalled", recalled.len() as u64);
        plan_span.virt(planned_at);
    }
    let planned = plan_fn(&view, &batch, planned_at);
    drop(plan_span);
    let plan = match planned {
        Ok(plan) => {
            core.metrics.decision(started.elapsed().as_secs_f64());
            wisedb_obs::observe_us(
                "wisedb_runtime_decision_us",
                started.elapsed().as_micros() as u64,
            );
            // A plan the cluster cannot honor (malformed or stale) must
            // fail this request, not the process: check it in full before
            // mutating anything.
            match core.validate_plan(&plan, target_type) {
                Ok(()) => plan,
                Err(err) => return core.rollback_offer(recalled, first_id, admitted.len(), err),
            }
        }
        // Planning failed (e.g. a retrain hit its search limits).
        Err(err) => return core.rollback_offer(recalled, first_id, admitted.len(), err),
    };
    core.apply_plan(class, plan, target, admitted.len())?;
    Ok(outcomes)
}

impl ServiceCore {
    /// Opens the books: a fresh cluster session over `spec` and a metrics
    /// collector with one row per class.
    pub(crate) fn new(spec: SpecHandle, classes: Vec<SlaClass>, config: RuntimeConfig) -> Self {
        ServiceCore {
            cluster: LiveCluster::new(spec, config.cluster.clone()),
            metrics: MetricsCollector::with_classes(classes),
            config,
            arrival_of: Vec::new(),
            completions: Vec::new(),
        }
    }

    /// Admission for one same-class burst, one arrival at a time: the
    /// virtual clock advances to each instant, and newcomers already
    /// admitted from this burst are folded into the pending/in-flight
    /// signals (they are not yet queued on the cluster, but they are
    /// committed to be).
    ///
    /// `carried` / `carried_class` extend that fold to newcomers admitted
    /// by *earlier groups of the same scheduling tick* (total and
    /// same-class respectively) — the sharded tick admits several groups
    /// before any of them is planned, and each must see its predecessors'
    /// commitments exactly like a later arrival of one serial burst would.
    /// Both are `0` on the unsharded path, which makes this the original
    /// single-burst admission loop verbatim.
    ///
    /// Returns the per-arrival outcomes plus the admitted `(template, at)`
    /// pairs; rejections are recorded against `class` as they happen.
    pub(crate) fn admit_burst(
        &mut self,
        class: TenantId,
        priority: u8,
        arrivals: &[(TemplateId, Millis)],
        carried: usize,
        carried_class: usize,
    ) -> (Vec<OfferOutcome>, Vec<(TemplateId, Millis)>) {
        let mut outcomes = Vec::with_capacity(arrivals.len());
        let mut admitted: Vec<(TemplateId, Millis)> = Vec::new();
        for &(template, at) in arrivals {
            self.step_to(at);
            let committed = admitted.len() + carried;
            let status = LoadStatus {
                now: at,
                pending: self.cluster.pending() + committed,
                in_flight: self.metrics.admitted() - self.metrics.completed() + committed as u64,
                vms_in_flight: self.cluster.vms_in_flight(),
                class,
                priority,
                class_pending: self.cluster.pending_of(class) + admitted.len() + carried_class,
            };
            if self.config.admission.admits(&status) {
                admitted.push((template, at));
                outcomes.push(OfferOutcome::Admitted);
                wisedb_obs::counter_add("wisedb_runtime_admitted_total", 1);
            } else {
                self.metrics.reject_as(class);
                outcomes.push(OfferOutcome::Shed);
                wisedb_obs::counter_add("wisedb_runtime_shed_total", 1);
                wisedb_obs::instant("admission.shed")
                    .virt(at)
                    .attr_u64("class", class.index() as u64)
                    .attr_u64("template", template.index() as u64)
                    .attr_u64("pending", status.pending as u64)
                    .emit();
            }
        }
        (outcomes, admitted)
    }

    /// Builds the planning batch for one admitted group: assigns stream
    /// ids to the newcomers (recording their arrival times) and recalls
    /// every *same-class* query queued unstarted. Other classes' queued
    /// placements stay put — their own next arrival may replan them.
    /// Returns `(first_id, batch, recalled)`; the recalled list is what a
    /// failed plan must restore.
    pub(crate) fn prepare_batch(
        &mut self,
        class: TenantId,
        admitted: &[(TemplateId, Millis)],
    ) -> (usize, Vec<PendingArrival>, Vec<RecalledQuery>) {
        let first_id = self.arrival_of.len();
        let mut batch: Vec<PendingArrival> = Vec::with_capacity(admitted.len());
        for (i, &(template, at)) in admitted.iter().enumerate() {
            batch.push(PendingArrival {
                id: QueryId((first_id + i) as u32),
                template,
                arrival: at,
            });
            self.arrival_of.push(at);
        }
        let recalled = self.cluster.recall_pending_of(class);
        for r in &recalled {
            batch.push(PendingArrival {
                id: r.query,
                template: r.template,
                arrival: self.arrival_of[r.query.index()],
            });
        }
        (first_id, batch, recalled)
    }

    /// Checks a plan's steps against the live cluster **before** any of
    /// them is applied: every provision names a VM type of the spec, every
    /// assignment has a VM to target (the open VM, or a provision step
    /// earlier in the plan), and the target's type supports the template.
    /// A malformed or stale plan is rejected as a typed
    /// [`CoreError::InconsistentPlan`] while the service state is still
    /// untouched (and therefore restorable).
    pub(crate) fn validate_plan(
        &self,
        plan: &ArrivalPlan,
        mut target_type: Option<VmTypeId>,
    ) -> CoreResult<()> {
        let spec = self.cluster.spec();
        for step in &plan.steps {
            match *step {
                PlannedStep::Provision(vm_type) => {
                    spec.vm_type(vm_type)
                        .map_err(|e| CoreError::InconsistentPlan {
                            detail: format!("plan provisions a VM type outside the spec: {e}"),
                        })?;
                    target_type = Some(vm_type);
                }
                PlannedStep::Assign { query, template } => {
                    let Some(vm_type) = target_type else {
                        return Err(CoreError::InconsistentPlan {
                            detail: format!(
                                "plan places {query:?} with no open VM and no prior provision step"
                            ),
                        });
                    };
                    if spec.latency(template, vm_type).is_none() {
                        return Err(CoreError::InconsistentPlan {
                            detail: format!(
                                "plan places {query:?} ({template}) on unsupporting {vm_type}"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Dispatches a validated plan onto the cluster, crediting `admitted`
    /// admissions to `class` first. `target` is the VM assignments before
    /// the plan's first provision step go to — the open VM of the view the
    /// plan was made against (the live one, or the tick snapshot's).
    ///
    /// Callers must have run [`validate_plan`](Self::validate_plan); a
    /// failure mid-application still answers with a typed error, but the
    /// already-applied prefix stands (no time passes mid-dispatch, so
    /// validated steps cannot actually fail).
    pub(crate) fn apply_plan(
        &mut self,
        class: TenantId,
        plan: ArrivalPlan,
        mut target: Option<usize>,
        admitted: usize,
    ) -> CoreResult<()> {
        for _ in 0..admitted {
            self.metrics.admit_as(class);
        }
        for step in plan.steps {
            match step {
                PlannedStep::Provision(vm_type) => {
                    // validate_plan checked the type against the spec; a
                    // failure here still answers with a typed error.
                    let index = self.cluster.provision_as(vm_type, class).map_err(|e| {
                        CoreError::InconsistentPlan {
                            detail: format!("provisioning planned {vm_type} failed: {e}"),
                        }
                    })?;
                    target = Some(index);
                }
                PlannedStep::Assign { query, template } => {
                    // validate_plan proved a target exists and supports the
                    // template, and no time passes mid-dispatch, so the
                    // target VM cannot have been released.
                    let vm = target.ok_or_else(|| CoreError::InconsistentPlan {
                        detail: format!("plan places {query:?} before renting any VM"),
                    })?;
                    self.cluster
                        .enqueue_as(vm, query, template, class)
                        .map_err(|e| CoreError::InconsistentPlan {
                            detail: format!("queueing planned {query:?} on VM {vm} failed: {e}"),
                        })?;
                }
            }
        }
        Ok(())
    }

    /// Unwinds a failed planning attempt: recalled queries go back to
    /// their previous VMs and the group's newcomers are dropped, so the
    /// service stays coherent for callers that handle the error and
    /// continue. The newcomers' ids are reclaimed when they sit at the
    /// tail of the ledger (always true for a lone burst; in a multi-group
    /// tick only the last group's are — earlier groups leave a gap of
    /// never-queued ids, which nothing ever completes). Always returns
    /// `Err` — either the original error, or a
    /// [`CoreError::InconsistentPlan`] if even the restore failed (a
    /// cluster-state inconsistency the caller must know about).
    pub(crate) fn rollback_offer<T>(
        &mut self,
        recalled: Vec<RecalledQuery>,
        first_id: usize,
        count: usize,
        err: CoreError,
    ) -> CoreResult<T> {
        let mut restore_failure = None;
        for r in recalled {
            if let Err(e) = self
                .cluster
                .enqueue_as(r.vm_index, r.query, r.template, r.class)
            {
                restore_failure = Some(CoreError::InconsistentPlan {
                    detail: format!(
                        "planning failed ({err}) and restoring recalled {:?} failed: {e}",
                        r.query
                    ),
                });
            }
        }
        if self.arrival_of.len() == first_id + count {
            self.arrival_of.truncate(first_id);
        }
        Err(restore_failure.unwrap_or(err))
    }

    /// Advances the virtual clock, harvesting completions into the metrics.
    pub(crate) fn step_to(&mut self, at: Millis) {
        for completion in self.cluster.advance_to(at) {
            self.metrics
                .complete(&completion, self.arrival_of[completion.query.index()]);
            wisedb_obs::counter_add("wisedb_runtime_completions_total", 1);
            self.completions.push(completion);
        }
    }

    /// Runs everything still queued to completion.
    pub(crate) fn drain(&mut self) {
        for completion in self.cluster.drain() {
            self.metrics
                .complete(&completion, self.arrival_of[completion.query.index()]);
            self.completions.push(completion);
        }
    }

    /// A metrics snapshot at the current virtual instant, with per-class
    /// rows carrying the cluster's dollar attribution.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot_with_billing(
            self.cluster.now(),
            self.cluster.billed(),
            self.cluster.billed_by_class(),
            self.cluster.vms_in_flight(),
            self.cluster.vms_provisioned(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{
        generate_class_stream, generate_stream, merge_streams, PoissonProcess, TemplateMix,
    };
    use wisedb_advisor::{ModelConfig, ModelGenerator};
    use wisedb_core::{GoalKind, Money, PerformanceGoal, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn config() -> RuntimeConfig {
        RuntimeConfig {
            online: OnlineConfig {
                training: ModelConfig {
                    num_samples: 40,
                    sample_size: 5,
                    seed: 3,
                    ..ModelConfig::fast()
                },
                ..OnlineConfig::default()
            },
            ..RuntimeConfig::default()
        }
    }

    fn service(kind: GoalKind) -> WorkloadService {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        WorkloadService::train(spec, goal, config()).unwrap()
    }

    fn three_classes(spec: &WorkloadSpec) -> Vec<SlaClass> {
        vec![
            SlaClass::new(
                "gold",
                PerformanceGoal::paper_default(GoalKind::PerQuery, spec).unwrap(),
            )
            .with_priority(2),
            SlaClass::new(
                "silver",
                PerformanceGoal::paper_default(GoalKind::MaxLatency, spec).unwrap(),
            )
            .with_priority(1),
            SlaClass::new(
                "bronze",
                PerformanceGoal::paper_default(GoalKind::AverageLatency, spec).unwrap(),
            ),
        ]
    }

    fn tagged_stream(n_per_class: usize) -> Vec<ArrivingQuery> {
        let streams = (0..3)
            .map(|c| {
                let mut process =
                    PoissonProcess::per_second(0.02 + 0.01 * c as f64, TemplateMix::uniform(2));
                generate_class_stream(&mut process, n_per_class, 100 + c as u64, TenantId(c))
            })
            .collect();
        merge_streams(streams)
    }

    #[test]
    fn stream_runs_end_to_end_and_completes_everything() {
        let mut svc = service(GoalKind::MaxLatency);
        let mut process = PoissonProcess::per_second(1.0 / 20.0, TemplateMix::uniform(2));
        let report = svc.run_process(&mut process, 30).unwrap();
        assert_eq!(report.last.admitted, 30);
        assert_eq!(report.last.completed, 30);
        assert_eq!(report.last.in_flight, 0);
        assert_eq!(report.completions.len(), 30);
        assert!(report.last.billed > Money::ZERO);
        assert!(report.last.dollars_per_hour > 0.0);
        assert!(report.last.vms_provisioned >= 1);
        assert_eq!(report.last.vms_in_flight, 0, "drained cluster is idle");
        // Latency covers execution at least: T2 is one minute.
        assert!(report.last.latency.p50 >= Millis::from_secs(60));
        // The single class's row mirrors the fleet.
        assert_eq!(report.last.classes.len(), 1);
        assert_eq!(report.last.classes[0].completed, 30);
        assert!(report.last.classes[0]
            .billed
            .approx_eq(report.last.billed, 1e-9));
    }

    #[test]
    fn runs_are_deterministic_under_a_seed() {
        let run = || {
            let mut svc = service(GoalKind::PerQuery);
            let mut process = PoissonProcess::per_second(0.05, TemplateMix::uniform(2));
            svc.run_process(&mut process, 25).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.last.latency, b.last.latency);
        assert_eq!(a.last.billed, b.last.billed);
        assert_eq!(a.last.penalty, b.last.penalty);
    }

    #[test]
    fn service_matches_the_batch_online_replayer() {
        // The incremental loop must reproduce OnlineScheduler::run exactly:
        // same stream, same per-query placements and times.
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut process = PoissonProcess::per_second(0.05, TemplateMix::uniform(2));
        let stream = generate_stream(&mut process, 25, 99);

        let mut svc = WorkloadService::train(spec.clone(), goal.clone(), config()).unwrap();
        let report = svc.run_stream(&stream).unwrap();

        let mut replayer =
            OnlineScheduler::train(spec.clone(), goal.clone(), config().online).unwrap();
        let batch_report = replayer.run(&stream).unwrap();

        let mut by_query = report.completions.clone();
        by_query.sort_by_key(|c| c.query);
        assert_eq!(by_query.len(), batch_report.outcomes.len());
        for (c, o) in by_query.iter().zip(&batch_report.outcomes) {
            assert_eq!(c.query, o.query);
            assert_eq!(c.vm_index, o.vm_index);
            assert_eq!(c.start, o.start);
            assert_eq!(c.finish, o.finish);
        }
        // And the money agrees with the replayer's Eq. 1 analogue.
        let total = report.last.total_cost();
        let batch_total = batch_report.total_cost(&spec, &goal).unwrap();
        assert!(
            total.approx_eq(batch_total, 1e-9),
            "service {total} vs replayer {batch_total}"
        );
    }

    #[test]
    fn admission_sheds_load_under_pressure() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut cfg = config();
        cfg.admission = AdmissionPolicy::MaxPending(2);
        let mut svc = WorkloadService::train(spec, goal, cfg).unwrap();
        // A hard burst: 40 queries in 4 seconds of a 1–2-minute workload.
        let mut process = PoissonProcess::per_second(10.0, TemplateMix::uniform(2));
        let report = svc.run_process(&mut process, 40).unwrap();
        assert!(report.last.rejected > 0, "burst must trip MaxPending(2)");
        assert_eq!(report.last.admitted + report.last.rejected, 40);
        assert_eq!(report.last.completed, report.last.admitted);
    }

    #[test]
    fn interim_snapshots_fire_on_schedule() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut cfg = config();
        cfg.snapshot_every = 5;
        let mut svc = WorkloadService::train(spec, goal, cfg).unwrap();
        let mut process = PoissonProcess::per_second(0.1, TemplateMix::uniform(2));
        let report = svc.run_process(&mut process, 12).unwrap();
        assert_eq!(report.snapshots.len(), 2);
        assert!(report.snapshots[0].admitted <= report.snapshots[1].admitted);
        assert!(report.snapshots[0].at <= report.snapshots[1].at);
    }

    #[test]
    fn three_classes_share_one_fleet() {
        let spec = spec();
        let classes = three_classes(&spec);
        let mut svc = WorkloadService::train_classes(spec, classes, config()).unwrap();
        let stream = tagged_stream(8);
        let report = svc.run_stream(&stream).unwrap();
        assert_eq!(report.last.admitted, 24);
        assert_eq!(report.last.completed, 24);
        assert_eq!(report.last.classes.len(), 3);
        for (i, row) in report.last.classes.iter().enumerate() {
            assert_eq!(row.class, TenantId(i as u32));
            assert_eq!(row.admitted, 8, "{}", row.name);
            assert_eq!(row.completed, 8, "{}", row.name);
        }
        // Every completion carries its class tag.
        for c in &report.completions {
            assert!(c.class.index() < 3);
        }
        // One shared fleet: dollar attribution sums to the bill.
        let attributed: Money = report.last.classes.iter().map(|c| c.billed).sum();
        assert!(attributed.approx_eq(report.last.billed, 1e-9));
    }

    #[test]
    fn class_subset_and_unknown_class_are_rejected() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let classes = vec![
            SlaClass::new("narrow", goal.clone()).with_templates(vec![TemplateId(1)]),
            SlaClass::new("open", goal),
        ];
        let mut svc = WorkloadService::train_classes(spec, classes, config()).unwrap();
        assert!(matches!(
            svc.offer_as(TemplateId(0), TenantId(0), Millis::ZERO),
            Err(CoreError::TemplateNotInClass { .. })
        ));
        assert!(matches!(
            svc.offer_as(TemplateId(0), TenantId(7), Millis::ZERO),
            Err(CoreError::UnknownTenantClass { .. })
        ));
        // The allowed template of the narrow class is admitted.
        assert!(svc
            .offer_as(TemplateId(1), TenantId(0), Millis::from_secs(1))
            .unwrap());
    }

    #[test]
    fn priority_shed_protects_gold_under_overload() {
        let spec = spec();
        let classes = three_classes(&spec);
        let mut cfg = config();
        cfg.admission = AdmissionPolicy::PriorityShed {
            base: 1,
            per_priority: 3,
        };
        let mut svc = WorkloadService::train_classes(spec, classes, cfg).unwrap();
        // A hard synchronized burst: 10 arrivals per class in 10 s.
        let streams = (0..3)
            .map(|c| {
                let mut p = PoissonProcess::per_second(1.0, TemplateMix::uniform(2));
                generate_class_stream(&mut p, 10, 7 + c as u64, TenantId(c))
            })
            .collect();
        let report = svc.run_stream(&merge_streams(streams)).unwrap();
        let rows = &report.last.classes;
        assert!(
            rows[2].rejected > rows[0].rejected,
            "bronze ({}) must shed more than gold ({})",
            rows[2].rejected,
            rows[0].rejected
        );
        assert_eq!(report.last.admitted + report.last.rejected, 30);
    }

    #[test]
    fn single_element_bursts_are_bit_identical_to_offer_as() {
        // offer_as delegates to offer_batch_as; this pins that a stream
        // pushed through explicit one-element bursts reproduces the
        // replayer exactly — the coalescing path's k=1 case is the
        // legacy path.
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut process = PoissonProcess::per_second(0.05, TemplateMix::uniform(2));
        let stream = generate_stream(&mut process, 20, 77);

        let mut a = WorkloadService::train(spec.clone(), goal.clone(), config()).unwrap();
        for q in &stream {
            a.offer_as(q.template, q.class, q.arrival).unwrap();
        }
        a.drain();

        let mut b = WorkloadService::train(spec, goal, config()).unwrap();
        for q in &stream {
            let outcomes = b
                .offer_batch_as(q.class, &[(q.template, q.arrival)])
                .unwrap();
            assert_eq!(outcomes, vec![OfferOutcome::Admitted]);
        }
        b.drain();

        assert_eq!(a.completions(), b.completions());
        // Decision latency is wall-clock (reported, never steering), so it
        // is the one legitimately nondeterministic field.
        let (mut sa, mut sb) = (a.snapshot(), b.snapshot());
        sa.mean_decision_secs = 0.0;
        sa.p95_decision_secs = 0.0;
        sb.mean_decision_secs = 0.0;
        sb.p95_decision_secs = 0.0;
        assert_eq!(sa, sb);
    }

    #[test]
    fn coalesced_bursts_plan_once_and_complete_everything() {
        let mut svc = service(GoalKind::MaxLatency);
        // Three arrivals in one burst: one plan call covers all three.
        let burst = [
            (TemplateId(0), Millis::from_secs(10)),
            (TemplateId(1), Millis::from_secs(11)),
            (TemplateId(1), Millis::from_secs(12)),
        ];
        let outcomes = svc.offer_batch_as(TenantId::DEFAULT, &burst).unwrap();
        assert_eq!(outcomes, vec![OfferOutcome::Admitted; 3]);
        svc.drain();
        let last = svc.snapshot();
        assert_eq!(last.admitted, 3);
        assert_eq!(last.completed, 3);
        // Admission still gates inside a burst: with MaxPending(1), the
        // burst's own earlier newcomers trip the limit for later ones.
        let mut cfg = config();
        cfg.admission = AdmissionPolicy::MaxPending(1);
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut tight = WorkloadService::train(spec, goal, cfg).unwrap();
        let outcomes = tight.offer_batch_as(TenantId::DEFAULT, &burst).unwrap();
        assert_eq!(outcomes[0], OfferOutcome::Admitted);
        assert!(
            outcomes[1..].contains(&OfferOutcome::Shed),
            "burst-local pending must count toward admission: {outcomes:?}"
        );
        tight.drain();
        let last = tight.snapshot();
        assert_eq!(last.admitted + last.rejected, 3);
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        let mut svc = service(GoalKind::MaxLatency);
        assert_eq!(svc.offer_batch_as(TenantId::DEFAULT, &[]).unwrap(), vec![]);
        assert_eq!(svc.snapshot().admitted, 0);
    }

    #[test]
    fn inconsistent_plans_fail_the_request_not_the_process() {
        // Drive validate_plan directly with malformed plans: an assignment
        // with no VM to target, a provision outside the spec, and an
        // unsupported placement must all come back as typed errors.
        let svc = service(GoalKind::MaxLatency);
        let bad_target = ArrivalPlan {
            steps: vec![PlannedStep::Assign {
                query: QueryId(0),
                template: TemplateId(0),
            }],
            retrained: false,
            cache_hit: false,
            shifted: false,
        };
        assert!(matches!(
            svc.validate_plan(&bad_target, None),
            Err(CoreError::InconsistentPlan { .. })
        ));
        let bad_type = ArrivalPlan {
            steps: vec![PlannedStep::Provision(wisedb_core::VmTypeId(99))],
            retrained: false,
            cache_hit: false,
            shifted: false,
        };
        assert!(matches!(
            svc.validate_plan(&bad_type, None),
            Err(CoreError::InconsistentPlan { .. })
        ));
        // A well-formed plan passes.
        let good = ArrivalPlan {
            steps: vec![
                PlannedStep::Provision(wisedb_core::VmTypeId(0)),
                PlannedStep::Assign {
                    query: QueryId(0),
                    template: TemplateId(1),
                },
            ],
            retrained: false,
            cache_hit: false,
            shifted: false,
        };
        assert!(svc.validate_plan(&good, None).is_ok());
    }

    #[test]
    fn swap_model_takes_effect_without_disturbing_in_flight_work() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut svc = WorkloadService::train(spec.clone(), goal.clone(), config()).unwrap();

        // Feed a burst so work is committed and queued mid-stream.
        let stream = generate_stream(
            &mut PoissonProcess::per_second(0.05, TemplateMix::uniform(2)),
            10,
            5,
        );
        for a in &stream[..5] {
            svc.offer_as(a.template, a.class, a.arrival).unwrap();
        }
        let before = svc.completions().to_vec();

        // Background-retrained replacement (different sampling seed).
        let (model, artifacts) = ModelGenerator::new(
            svc.scheduler(TenantId::DEFAULT)
                .unwrap()
                .base_model()
                .spec_handle()
                .clone(),
            svc.classes()[0].goal.clone(),
            config().online.training.with_seed(4242),
        )
        .train_with_artifacts()
        .unwrap();
        svc.swap_model(TenantId::DEFAULT, model.clone(), artifacts.clone())
            .unwrap();

        // Already-harvested completions are untouched by the swap.
        assert_eq!(&svc.completions()[..before.len()], &before[..]);
        // The swapped model is what plans the next arrival.
        assert_eq!(
            svc.scheduler(TenantId::DEFAULT)
                .unwrap()
                .base_model()
                .render_tree(),
            model.render_tree()
        );
        for a in &stream[5..] {
            svc.offer_as(a.template, a.class, a.arrival).unwrap();
        }
        svc.drain();
        let last = svc.snapshot();
        assert_eq!(last.completed, 10, "service keeps running after a swap");

        // A model for the wrong goal is rejected.
        let other_goal = PerformanceGoal::paper_default(GoalKind::AverageLatency, &spec).unwrap();
        let (bad, bad_artifacts) = ModelGenerator::new(
            svc.scheduler(TenantId::DEFAULT)
                .unwrap()
                .base_model()
                .spec_handle()
                .clone(),
            other_goal,
            config().online.training,
        )
        .train_with_artifacts()
        .unwrap();
        assert!(matches!(
            svc.swap_model(TenantId::DEFAULT, bad, bad_artifacts),
            Err(CoreError::ModelMismatch { .. })
        ));
    }
}
