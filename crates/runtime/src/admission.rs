//! Admission control: the overload valve.
//!
//! An online scheduler that accepts every arrival under saturation grows
//! its pending queue (and its rescheduling batches) without bound — each
//! batch replan is `O(batch)`, so overload also slows the scheduler itself.
//! Admission control sheds load *before* it enters the system; rejected
//! queries are counted in the metrics, never queued.

use wisedb_core::Millis;

/// The load signals an admission decision may consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStatus {
    /// Current virtual time.
    pub now: Millis,
    /// Queries queued but not yet started.
    pub pending: usize,
    /// Queries admitted but not yet finished (pending + executing).
    pub in_flight: u64,
    /// VMs provisioned and not yet released.
    pub vms_in_flight: usize,
}

/// When to accept an arriving query.
#[derive(Clone, Copy)]
pub enum AdmissionPolicy {
    /// Accept everything (the default; matches §6.3 replay semantics).
    AcceptAll,
    /// Reject once this many queries are already queued unstarted (the
    /// value is a capacity: `MaxPending(5)` admits while pending ≤ 4).
    MaxPending(usize),
    /// Reject once this many queries are already in flight.
    MaxInFlight(u64),
    /// Reject once this many VMs are already rented concurrently — a
    /// spend cap expressed in fleet size.
    MaxVms(usize),
    /// An arbitrary hook over the load signals.
    Custom(fn(&LoadStatus) -> bool),
}

impl AdmissionPolicy {
    /// Whether an arrival observed under `status` is admitted.
    pub fn admits(&self, status: &LoadStatus) -> bool {
        match self {
            AdmissionPolicy::AcceptAll => true,
            AdmissionPolicy::MaxPending(limit) => status.pending < *limit,
            AdmissionPolicy::MaxInFlight(limit) => status.in_flight < *limit,
            AdmissionPolicy::MaxVms(limit) => status.vms_in_flight < *limit,
            AdmissionPolicy::Custom(f) => f(status),
        }
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::AcceptAll
    }
}

impl std::fmt::Debug for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::AcceptAll => write!(f, "AcceptAll"),
            AdmissionPolicy::MaxPending(n) => write!(f, "MaxPending({n})"),
            AdmissionPolicy::MaxInFlight(n) => write!(f, "MaxInFlight({n})"),
            AdmissionPolicy::MaxVms(n) => write!(f, "MaxVms({n})"),
            AdmissionPolicy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(pending: usize, in_flight: u64, vms: usize) -> LoadStatus {
        LoadStatus {
            now: Millis::from_secs(1),
            pending,
            in_flight,
            vms_in_flight: vms,
        }
    }

    #[test]
    fn policies_gate_on_their_signal() {
        assert!(AdmissionPolicy::AcceptAll.admits(&status(1000, 1000, 1000)));
        assert!(AdmissionPolicy::MaxPending(5).admits(&status(4, 0, 0)));
        assert!(!AdmissionPolicy::MaxPending(5).admits(&status(5, 0, 0)));
        assert!(AdmissionPolicy::MaxInFlight(2).admits(&status(0, 1, 0)));
        assert!(!AdmissionPolicy::MaxInFlight(2).admits(&status(0, 2, 0)));
        assert!(AdmissionPolicy::MaxVms(3).admits(&status(0, 0, 2)));
        assert!(!AdmissionPolicy::MaxVms(3).admits(&status(0, 0, 3)));
    }

    #[test]
    fn custom_hook_sees_the_signals() {
        let policy = AdmissionPolicy::Custom(|s| s.pending + s.vms_in_flight < 4);
        assert!(policy.admits(&status(1, 0, 2)));
        assert!(!policy.admits(&status(2, 0, 2)));
    }
}
