//! Admission control: the overload valve.
//!
//! An online scheduler that accepts every arrival under saturation grows
//! its pending queue (and its rescheduling batches) without bound — each
//! batch replan is `O(batch)`, so overload also slows the scheduler itself.
//! Admission control sheds load *before* it enters the system; rejected
//! queries are counted in the metrics, never queued.
//!
//! Multi-tenant services shed *by class*: the [`LoadStatus`] names the
//! arriving query's SLA class, its priority, and its class-local queue
//! depth, so policies can protect tight SLAs by shedding the loosest
//! (lowest-priority) classes first — see [`AdmissionPolicy::PriorityShed`].

use wisedb_core::{Millis, TenantId};

/// The load signals an admission decision may consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStatus {
    /// Current virtual time.
    pub now: Millis,
    /// Queries queued but not yet started, fleet-wide.
    pub pending: usize,
    /// Queries admitted but not yet finished (pending + executing).
    pub in_flight: u64,
    /// VMs provisioned and not yet released.
    pub vms_in_flight: usize,
    /// The arriving query's SLA class.
    pub class: TenantId,
    /// The arriving class's shedding priority (higher keeps working
    /// longer under priority-aware policies).
    pub priority: u8,
    /// Queries of the arriving class queued but not yet started.
    pub class_pending: usize,
}

/// When to accept an arriving query.
#[derive(Clone, Copy)]
pub enum AdmissionPolicy {
    /// Accept everything (the default; matches §6.3 replay semantics).
    AcceptAll,
    /// Reject once this many queries are already queued unstarted,
    /// fleet-wide (the value is a capacity: `MaxPending(5)` admits while
    /// pending ≤ 4).
    MaxPending(usize),
    /// Reject once this many queries are already in flight.
    MaxInFlight(u64),
    /// Reject once this many VMs are already rented concurrently — a
    /// spend cap expressed in fleet size.
    MaxVms(usize),
    /// Reject once the *arriving class* has this many queries queued
    /// unstarted — per-tenant queue isolation: one class's burst cannot
    /// starve another's admission.
    MaxClassPending(usize),
    /// Priority-proportional shedding: a class of priority `p` is admitted
    /// while fleet-wide pending is below `base + p · per_priority`. Under
    /// a mounting backlog the lowest-priority class (the loosest SLA) hits
    /// its allowance first and sheds, while higher priorities keep
    /// admitting — graceful degradation from bronze up to gold.
    PriorityShed {
        /// Pending allowance of a priority-0 class.
        base: usize,
        /// Extra pending allowance per priority level.
        per_priority: usize,
    },
    /// An arbitrary hook over the load signals.
    Custom(fn(&LoadStatus) -> bool),
}

impl AdmissionPolicy {
    /// Whether an arrival observed under `status` is admitted.
    pub fn admits(&self, status: &LoadStatus) -> bool {
        match self {
            AdmissionPolicy::AcceptAll => true,
            AdmissionPolicy::MaxPending(limit) => status.pending < *limit,
            AdmissionPolicy::MaxInFlight(limit) => status.in_flight < *limit,
            AdmissionPolicy::MaxVms(limit) => status.vms_in_flight < *limit,
            AdmissionPolicy::MaxClassPending(limit) => status.class_pending < *limit,
            AdmissionPolicy::PriorityShed { base, per_priority } => {
                status.pending < base + status.priority as usize * per_priority
            }
            AdmissionPolicy::Custom(f) => f(status),
        }
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::AcceptAll
    }
}

impl std::fmt::Debug for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::AcceptAll => write!(f, "AcceptAll"),
            AdmissionPolicy::MaxPending(n) => write!(f, "MaxPending({n})"),
            AdmissionPolicy::MaxInFlight(n) => write!(f, "MaxInFlight({n})"),
            AdmissionPolicy::MaxVms(n) => write!(f, "MaxVms({n})"),
            AdmissionPolicy::MaxClassPending(n) => write!(f, "MaxClassPending({n})"),
            AdmissionPolicy::PriorityShed { base, per_priority } => {
                write!(f, "PriorityShed({base}+{per_priority}/prio)")
            }
            AdmissionPolicy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(pending: usize, in_flight: u64, vms: usize) -> LoadStatus {
        LoadStatus {
            now: Millis::from_secs(1),
            pending,
            in_flight,
            vms_in_flight: vms,
            class: TenantId::DEFAULT,
            priority: 0,
            class_pending: pending,
        }
    }

    fn class_status(pending: usize, class: u32, priority: u8, class_pending: usize) -> LoadStatus {
        LoadStatus {
            now: Millis::from_secs(1),
            pending,
            in_flight: 0,
            vms_in_flight: 0,
            class: TenantId(class),
            priority,
            class_pending,
        }
    }

    #[test]
    fn policies_gate_on_their_signal() {
        assert!(AdmissionPolicy::AcceptAll.admits(&status(1000, 1000, 1000)));
        assert!(AdmissionPolicy::MaxPending(5).admits(&status(4, 0, 0)));
        assert!(!AdmissionPolicy::MaxPending(5).admits(&status(5, 0, 0)));
        assert!(AdmissionPolicy::MaxInFlight(2).admits(&status(0, 1, 0)));
        assert!(!AdmissionPolicy::MaxInFlight(2).admits(&status(0, 2, 0)));
        assert!(AdmissionPolicy::MaxVms(3).admits(&status(0, 0, 2)));
        assert!(!AdmissionPolicy::MaxVms(3).admits(&status(0, 0, 3)));
    }

    #[test]
    fn class_pending_isolates_tenants() {
        let policy = AdmissionPolicy::MaxClassPending(2);
        // Fleet-wide pressure is irrelevant; the class's own queue gates.
        assert!(policy.admits(&class_status(100, 1, 0, 1)));
        assert!(!policy.admits(&class_status(0, 1, 0, 2)));
    }

    #[test]
    fn priority_shed_drops_the_loosest_first() {
        let policy = AdmissionPolicy::PriorityShed {
            base: 2,
            per_priority: 3,
        };
        // Backlog of 4: priority 0 (allowance 2) sheds, priority 1
        // (allowance 5) still admits.
        assert!(!policy.admits(&class_status(4, 2, 0, 1)));
        assert!(policy.admits(&class_status(4, 0, 1, 1)));
        // Backlog of 6: priority 1 sheds too; priority 2 (allowance 8)
        // keeps working.
        assert!(!policy.admits(&class_status(6, 0, 1, 1)));
        assert!(policy.admits(&class_status(6, 1, 2, 1)));
    }

    #[test]
    fn custom_hook_sees_the_signals() {
        let policy = AdmissionPolicy::Custom(|s| s.pending + s.vms_in_flight < 4);
        assert!(policy.admits(&status(1, 0, 2)));
        assert!(!policy.admits(&status(2, 0, 2)));
        // Class signals are visible to hooks.
        let per_class = AdmissionPolicy::Custom(|s| s.class != TenantId(3));
        assert!(per_class.admits(&class_status(0, 0, 0, 0)));
        assert!(!per_class.admits(&class_status(0, 3, 0, 0)));
    }
}
