//! Live metrics accounting for the streaming service.
//!
//! The collector ingests completions and scheduler timings as they happen
//! and can emit a [`MetricsSnapshot`] at any virtual instant — the numbers
//! an operator would watch on a dashboard: latency percentiles, SLA
//! violation rate, spend rate, fleet size, and scheduler decision latency.
//!
//! Two design points:
//!
//! * **Per-class accounting.** The collector holds one accounting row per
//!   [`SlaClass`]: violations are judged under *that class's* goal,
//!   penalties accrue in per-class [`PenaltyTracker`]s, and snapshots
//!   report a [`ClassMetrics`] row per class alongside the fleet-wide
//!   totals. Sums across classes reproduce the fleet numbers exactly; a
//!   single-class collector is bit-identical to the legacy single-goal
//!   one (asserted by `tests/multitenant_e2e.rs`).
//! * **Incremental percentiles.** Latency populations live in
//!   [`LatencyHistogram`]s, so an interim snapshot costs O(distinct
//!   values) instead of re-sorting the whole history — the old
//!   `LatencySummary::of(&history)` made a snapshot-every-k stream
//!   quadratic. Percentiles are bit-identical to the naive sort.

use wisedb_core::{
    ClassMetrics, GoalHandle, LatencyHistogram, Millis, Money, PenaltyTracker, SlaClass,
    TemplateId, TenantId,
};
use wisedb_sim::Completion;

use wisedb_core::MetricsSnapshot;

/// One SLA class's running accounts.
#[derive(Debug, Clone)]
struct ClassState {
    class: SlaClass,
    penalty: PenaltyTracker,
    admitted: u64,
    rejected: u64,
    violations: u64,
    latency: LatencyHistogram,
    queueing: LatencyHistogram,
}

impl ClassState {
    fn new(class: SlaClass) -> Self {
        let penalty = class.goal.new_tracker();
        ClassState {
            class,
            penalty,
            admitted: 0,
            rejected: 0,
            violations: 0,
            latency: LatencyHistogram::new(),
            queueing: LatencyHistogram::new(),
        }
    }
}

/// Incrementally maintained scheduler decision-latency statistics: counts
/// keyed by the timing quantized to whole microseconds (wall-clock noise
/// floor), a running sum for the mean, so a snapshot never clones or
/// re-sorts the timing history (the same O(n²) pattern the latency
/// populations shed via [`LatencyHistogram`]).
#[derive(Debug, Clone, Default)]
struct DecisionStats {
    /// Count per whole-microsecond timing value, ascending.
    counts: std::collections::BTreeMap<u64, u64>,
    count: u64,
    sum_secs: f64,
}

impl DecisionStats {
    fn push(&mut self, secs: f64) {
        let micros = (secs * 1e6).round().max(0.0) as u64;
        *self.counts.entry(micros).or_insert(0) += 1;
        self.count += 1;
        self.sum_secs += secs;
    }

    /// `(mean, p95)` in seconds; zeros when empty. The percentile is
    /// nearest-rank over the microsecond-quantized population (matching
    /// `wisedb_sim::stats::percentile` up to the 1 µs quantization, far
    /// below wall-clock measurement noise).
    fn mean_and_p95(&self) -> (f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0);
        }
        let k = ((0.95 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut p95 = 0u64;
        for (&micros, &n) in &self.counts {
            seen += n;
            p95 = micros;
            if seen >= k {
                break;
            }
        }
        (self.sum_secs / self.count as f64, p95 as f64 / 1e6)
    }
}

/// Accumulates per-query outcomes and scheduler timings, per SLA class.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    /// One row per class, indexed by [`TenantId`].
    classes: Vec<ClassState>,
    /// Fleet-wide latency population (the per-class populations partition
    /// it; kept separately so fleet summaries cost one histogram walk).
    latency: LatencyHistogram,
    /// Fleet-wide queueing-delay population.
    queueing: LatencyHistogram,
    decisions: DecisionStats,
}

impl MetricsCollector {
    /// A single-class collector judging violations and penalties under
    /// `goal` (owned or a shared handle) — the legacy single-goal shape.
    pub fn new(goal: impl Into<GoalHandle>) -> Self {
        MetricsCollector::with_classes(vec![SlaClass::solo(goal.into())])
    }

    /// A collector with one accounting row per SLA class (`classes[i]` is
    /// [`TenantId`]`(i)`; must be non-empty).
    pub fn with_classes(classes: Vec<SlaClass>) -> Self {
        assert!(!classes.is_empty(), "metrics need at least one SLA class");
        MetricsCollector {
            classes: classes.into_iter().map(ClassState::new).collect(),
            latency: LatencyHistogram::new(),
            queueing: LatencyHistogram::new(),
            decisions: DecisionStats::default(),
        }
    }

    fn class_mut(&mut self, class: TenantId) -> &mut ClassState {
        self.classes
            .get_mut(class.index())
            .expect("completions and admissions carry configured classes")
    }

    /// Records an admitted arrival of the default class.
    pub fn admit(&mut self) {
        self.admit_as(TenantId::DEFAULT);
    }

    /// Records an admitted arrival of one class.
    pub fn admit_as(&mut self, class: TenantId) {
        self.class_mut(class).admitted += 1;
    }

    /// Records a rejected arrival of the default class.
    pub fn reject(&mut self) {
        self.reject_as(TenantId::DEFAULT);
    }

    /// Records a rejected arrival of one class.
    pub fn reject_as(&mut self, class: TenantId) {
        self.class_mut(class).rejected += 1;
    }

    /// Records the scheduler's wall-clock overhead for one arrival.
    pub fn decision(&mut self, secs: f64) {
        self.decisions.push(secs);
    }

    /// Records one completed execution. `arrival` is the query's original
    /// arrival time; its SLA latency is `finish − arrival`, judged under
    /// the goal of the completion's class.
    pub fn complete(&mut self, completion: &Completion, arrival: Millis) {
        let latency = completion.finish.saturating_sub(arrival);
        let queueing = completion.start.saturating_sub(arrival);
        self.latency.push(latency);
        self.queueing.push(queueing);
        let state = self.class_mut(completion.class);
        state.latency.push(latency);
        state.queueing.push(queueing);
        if latency > state.class.goal.per_query_bound(completion.template) {
            state.violations += 1;
        }
        let goal = state.class.goal.clone();
        state.penalty.push(&goal, completion.template, latency);
    }

    /// Queries completed so far, fleet-wide.
    pub fn completed(&self) -> u64 {
        self.latency.count()
    }

    /// Arrivals admitted so far, fleet-wide.
    pub fn admitted(&self) -> u64 {
        self.classes.iter().map(|c| c.admitted).sum()
    }

    /// The SLA penalty accrued by completions so far, fleet-wide (the sum
    /// of the per-class trackers).
    pub fn penalty(&self) -> Money {
        self.classes
            .iter()
            .map(|c| c.penalty.penalty(&c.class.goal))
            .sum()
    }

    /// Per-query violation of `template` at `latency` under the *default*
    /// class's goal (exposed for tests).
    pub fn violates(&self, template: TemplateId, latency: Millis) -> bool {
        self.violates_for(TenantId::DEFAULT, template, latency)
    }

    /// Per-query violation judged under one class's goal.
    pub fn violates_for(&self, class: TenantId, template: TemplateId, latency: Millis) -> bool {
        let state = &self.classes[class.index()];
        latency > state.class.goal.per_query_bound(template)
    }

    /// Snapshots the current state. The cluster-side inputs (`billed`,
    /// fleet gauges) come from the live cluster at the same instant; a
    /// single-class collector attributes the whole bill to its class.
    ///
    /// **Multi-class callers must use
    /// [`snapshot_with_billing`](Self::snapshot_with_billing)** (what
    /// `WorkloadService::snapshot` does): without the cluster's per-class
    /// ledger this method cannot attribute dollars, so on a collector with
    /// two or more classes every row's `billed`/`dollars_per_hour` reads
    /// zero while the fleet-level `billed` is still correct.
    pub fn snapshot(
        &self,
        now: Millis,
        billed: Money,
        vms_in_flight: usize,
        vms_provisioned: usize,
    ) -> MetricsSnapshot {
        let solo = [billed];
        let by_class: &[Money] = if self.classes.len() == 1 { &solo } else { &[] };
        self.snapshot_with_billing(now, billed, by_class, vms_in_flight, vms_provisioned)
    }

    /// [`snapshot`](Self::snapshot) with explicit per-class dollar
    /// attribution (what [`LiveCluster::billed_by_class`] reports; short
    /// slices read as zero for the missing classes).
    ///
    /// [`LiveCluster::billed_by_class`]: wisedb_sim::LiveCluster::billed_by_class
    pub fn snapshot_with_billing(
        &self,
        now: Millis,
        billed: Money,
        billed_by_class: &[Money],
        vms_in_flight: usize,
        vms_provisioned: usize,
    ) -> MetricsSnapshot {
        let completed = self.completed();
        let penalty = self.penalty();
        let hours = now.as_hours_f64();
        let (mean_decision_secs, p95_decision_secs) = self.decisions.mean_and_p95();
        let classes: Vec<ClassMetrics> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, state)| {
                let class_completed = state.latency.count();
                let class_billed = billed_by_class.get(i).copied().unwrap_or(Money::ZERO);
                let class_penalty = state.penalty.penalty(&state.class.goal);
                ClassMetrics {
                    class: TenantId(i as u32),
                    name: state.class.name.clone(),
                    priority: state.class.priority,
                    admitted: state.admitted,
                    rejected: state.rejected,
                    completed: class_completed,
                    latency: state.latency.summary(),
                    queueing: state.queueing.summary(),
                    sla_violations: state.violations,
                    violation_rate: if class_completed == 0 {
                        0.0
                    } else {
                        state.violations as f64 / class_completed as f64
                    },
                    billed: class_billed,
                    penalty: class_penalty,
                    dollars_per_hour: if hours > 0.0 {
                        (class_billed + class_penalty).as_dollars() / hours
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let violations: u64 = self.classes.iter().map(|c| c.violations).sum();
        let admitted = self.admitted();
        MetricsSnapshot {
            at: now,
            admitted,
            rejected: self.classes.iter().map(|c| c.rejected).sum(),
            completed,
            in_flight: admitted - completed,
            latency: self.latency.summary(),
            queueing: self.queueing.summary(),
            sla_violations: violations,
            violation_rate: if completed == 0 {
                0.0
            } else {
                violations as f64 / completed as f64
            },
            billed,
            penalty,
            dollars_per_hour: if hours > 0.0 {
                (billed + penalty).as_dollars() / hours
            } else {
                0.0
            },
            vms_in_flight: vms_in_flight as u64,
            vms_provisioned: vms_provisioned as u64,
            mean_decision_secs,
            p95_decision_secs,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{LatencySummary, PenaltyRate, PerformanceGoal, QueryId};

    fn goal() -> PerformanceGoal {
        PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    fn completion(q: u32, start_s: u64, finish_s: u64) -> Completion {
        Completion {
            query: QueryId(q),
            template: TemplateId(0),
            class: TenantId::DEFAULT,
            vm_index: 0,
            start: Millis::from_secs(start_s),
            finish: Millis::from_secs(finish_s),
        }
    }

    #[test]
    fn violations_and_penalty_track_the_goal() {
        let mut m = MetricsCollector::new(goal());
        m.admit();
        m.admit();
        // On time: 60 s latency.
        m.complete(&completion(0, 10, 70), Millis::from_secs(10));
        // Violation: 180 s latency, 60 s over → $0.60 at 1 cent/s.
        m.complete(&completion(1, 100, 200), Millis::from_secs(20));
        assert_eq!(m.completed(), 2);
        let s = m.snapshot(Millis::from_mins(10), Money::from_dollars(1.0), 1, 2);
        assert_eq!(s.sla_violations, 1);
        assert!((s.violation_rate - 0.5).abs() < 1e-12);
        assert!(s.penalty.approx_eq(Money::from_dollars(0.60), 1e-9));
        assert_eq!(s.in_flight, 0);
        // $1.60 over 1/6 hour = $9.60/h.
        assert!((s.dollars_per_hour - 9.6).abs() < 1e-9);
        assert_eq!(s.queueing.max, Millis::from_secs(80));
        // The single class's row mirrors the fleet numbers.
        assert_eq!(s.classes.len(), 1);
        let c = &s.classes[0];
        assert_eq!(c.completed, 2);
        assert_eq!(c.sla_violations, 1);
        assert_eq!(c.latency, s.latency);
        assert!(c.billed.approx_eq(s.billed, 1e-12));
        assert!(c.penalty.approx_eq(s.penalty, 1e-12));
        assert!((c.dollars_per_hour - s.dollars_per_hour).abs() < 1e-9);
    }

    #[test]
    fn empty_collector_snapshots_zeroes() {
        let m = MetricsCollector::new(goal());
        let s = m.snapshot(Millis::ZERO, Money::ZERO, 0, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.violation_rate, 0.0);
        assert_eq!(s.dollars_per_hour, 0.0);
        assert_eq!(s.latency, LatencySummary::default());
        assert_eq!(s.classes[0].latency, LatencySummary::default());
    }

    #[test]
    fn decision_latency_percentiles() {
        let mut m = MetricsCollector::new(goal());
        for i in 1..=100 {
            m.decision(i as f64 / 1000.0);
        }
        let s = m.snapshot(Millis::from_secs(1), Money::ZERO, 0, 0);
        assert!((s.mean_decision_secs - 0.0505).abs() < 1e-9);
        assert!((s.p95_decision_secs - 0.095).abs() < 1e-12);
    }

    #[test]
    fn per_class_rows_judge_their_own_goals() {
        // Gold: 2-minute deadline. Bronze: 10-minute deadline. The same
        // 3-minute completion violates gold but not bronze.
        let classes = vec![
            SlaClass::new("gold", goal()).with_priority(1),
            SlaClass::new(
                "bronze",
                PerformanceGoal::MaxLatency {
                    deadline: Millis::from_mins(10),
                    rate: PenaltyRate::CENT_PER_SECOND,
                },
            ),
        ];
        let mut m = MetricsCollector::with_classes(classes);
        m.admit_as(TenantId(0));
        m.admit_as(TenantId(1));
        m.reject_as(TenantId(1));
        let mut slow = completion(0, 0, 180);
        m.complete(&slow, Millis::ZERO);
        slow.class = TenantId(1);
        slow.query = QueryId(1);
        m.complete(&slow, Millis::ZERO);

        assert!(m.violates_for(TenantId(0), TemplateId(0), Millis::from_mins(3)));
        assert!(!m.violates_for(TenantId(1), TemplateId(0), Millis::from_mins(3)));

        let by_class = [Money::from_dollars(0.25), Money::from_dollars(0.75)];
        let s = m.snapshot_with_billing(
            Millis::from_mins(30),
            Money::from_dollars(1.0),
            &by_class,
            0,
            1,
        );
        assert_eq!(s.classes.len(), 2);
        let (gold, bronze) = (&s.classes[0], &s.classes[1]);
        assert_eq!(gold.sla_violations, 1);
        assert_eq!(bronze.sla_violations, 0);
        assert_eq!(gold.admitted, 1);
        assert_eq!(bronze.admitted, 1);
        assert_eq!(bronze.rejected, 1);
        assert_eq!(s.rejected, 1);
        // Fleet totals are the class sums.
        assert_eq!(
            s.sla_violations,
            gold.sla_violations + bronze.sla_violations
        );
        assert_eq!(s.completed, gold.completed + bronze.completed);
        assert!((gold.penalty + bronze.penalty).approx_eq(s.penalty, 1e-12));
        assert!(gold.billed.approx_eq(by_class[0], 1e-12));
        assert!(bronze.billed.approx_eq(by_class[1], 1e-12));
        // Gold pays a penalty (60 s over at 1 cent/s), bronze does not.
        assert!(gold.penalty.approx_eq(Money::from_dollars(0.60), 1e-9));
        assert_eq!(bronze.penalty, Money::ZERO);
        assert!(gold.dollars_per_hour > bronze.dollars_per_hour);
    }

    #[test]
    fn incremental_summaries_match_naive_resort() {
        // The histogram path must agree with LatencySummary::of on the
        // full history at every interim snapshot.
        let mut m = MetricsCollector::new(goal());
        let mut latencies = Vec::new();
        let mut queueings = Vec::new();
        let mut x: u64 = 42;
        for q in 0..500u32 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let start = x % 400;
            let exec = 1 + x % 300;
            m.admit();
            m.complete(
                &completion(q, start, start + exec),
                Millis::from_secs(x % 37),
            );
            let arrival = Millis::from_secs(x % 37);
            latencies.push(Millis::from_secs(start + exec).saturating_sub(arrival));
            queueings.push(Millis::from_secs(start).saturating_sub(arrival));
            if q % 97 == 0 || q == 499 {
                let s = m.snapshot(Millis::from_secs(1), Money::ZERO, 0, 0);
                assert_eq!(s.latency, LatencySummary::of(&latencies));
                assert_eq!(s.queueing, LatencySummary::of(&queueings));
                assert_eq!(s.classes[0].latency, s.latency);
            }
        }
    }
}
