//! Live metrics accounting for the streaming service.
//!
//! The collector ingests completions and scheduler timings as they happen
//! and can emit a [`MetricsSnapshot`] at any virtual instant — the numbers
//! an operator would watch on a dashboard: latency percentiles, SLA
//! violation rate, spend rate, fleet size, and scheduler decision latency.

use wisedb_core::{
    GoalHandle, LatencySummary, MetricsSnapshot, Millis, Money, PenaltyTracker, TemplateId,
};
use wisedb_sim::Completion;

/// Accumulates per-query outcomes and scheduler timings.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    goal: GoalHandle,
    penalty: PenaltyTracker,
    admitted: u64,
    rejected: u64,
    latencies: Vec<Millis>,
    queueing: Vec<Millis>,
    violations: u64,
    decision_secs: Vec<f64>,
}

impl MetricsCollector {
    /// A collector judging violations and penalties under `goal` (owned or
    /// a shared handle).
    pub fn new(goal: impl Into<GoalHandle>) -> Self {
        let goal = goal.into();
        let penalty = goal.new_tracker();
        MetricsCollector {
            goal,
            penalty,
            admitted: 0,
            rejected: 0,
            latencies: Vec::new(),
            queueing: Vec::new(),
            violations: 0,
            decision_secs: Vec::new(),
        }
    }

    /// Records an admitted arrival.
    pub fn admit(&mut self) {
        self.admitted += 1;
    }

    /// Records a rejected arrival.
    pub fn reject(&mut self) {
        self.rejected += 1;
    }

    /// Records the scheduler's wall-clock overhead for one arrival.
    pub fn decision(&mut self, secs: f64) {
        self.decision_secs.push(secs);
    }

    /// Records one completed execution. `arrival` is the query's original
    /// arrival time; its SLA latency is `finish − arrival`.
    pub fn complete(&mut self, completion: &Completion, arrival: Millis) {
        let latency = completion.finish.saturating_sub(arrival);
        self.latencies.push(latency);
        self.queueing.push(completion.start.saturating_sub(arrival));
        if latency > self.goal.per_query_bound(completion.template) {
            self.violations += 1;
        }
        self.penalty.push(&self.goal, completion.template, latency);
    }

    /// Queries completed so far.
    pub fn completed(&self) -> u64 {
        self.latencies.len() as u64
    }

    /// Arrivals admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// The SLA penalty accrued by completions so far.
    pub fn penalty(&self) -> Money {
        self.penalty.penalty(&self.goal)
    }

    /// Per-query violation of `template` at `latency` (exposed for tests).
    pub fn violates(&self, template: TemplateId, latency: Millis) -> bool {
        latency > self.goal.per_query_bound(template)
    }

    /// Snapshots the current state. The cluster-side inputs (`billed`,
    /// fleet gauges) come from the live cluster at the same instant.
    pub fn snapshot(
        &self,
        now: Millis,
        billed: Money,
        vms_in_flight: usize,
        vms_provisioned: usize,
    ) -> MetricsSnapshot {
        let completed = self.completed();
        let penalty = self.penalty();
        let hours = now.as_hours_f64();
        let (mean_decision_secs, p95_decision_secs) = if self.decision_secs.is_empty() {
            (0.0, 0.0)
        } else {
            (
                wisedb_sim::stats::mean(&self.decision_secs),
                wisedb_sim::stats::percentile(&self.decision_secs, 95.0),
            )
        };
        MetricsSnapshot {
            at: now,
            admitted: self.admitted,
            rejected: self.rejected,
            completed,
            in_flight: self.admitted - completed,
            latency: LatencySummary::of(&self.latencies),
            queueing: LatencySummary::of(&self.queueing),
            sla_violations: self.violations,
            violation_rate: if completed == 0 {
                0.0
            } else {
                self.violations as f64 / completed as f64
            },
            billed,
            penalty,
            dollars_per_hour: if hours > 0.0 {
                (billed + penalty).as_dollars() / hours
            } else {
                0.0
            },
            vms_in_flight: vms_in_flight as u64,
            vms_provisioned: vms_provisioned as u64,
            mean_decision_secs,
            p95_decision_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{PenaltyRate, PerformanceGoal, QueryId};

    fn goal() -> PerformanceGoal {
        PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    fn completion(q: u32, start_s: u64, finish_s: u64) -> Completion {
        Completion {
            query: QueryId(q),
            template: TemplateId(0),
            vm_index: 0,
            start: Millis::from_secs(start_s),
            finish: Millis::from_secs(finish_s),
        }
    }

    #[test]
    fn violations_and_penalty_track_the_goal() {
        let mut m = MetricsCollector::new(goal());
        m.admit();
        m.admit();
        // On time: 60 s latency.
        m.complete(&completion(0, 10, 70), Millis::from_secs(10));
        // Violation: 180 s latency, 60 s over → $0.60 at 1 cent/s.
        m.complete(&completion(1, 100, 200), Millis::from_secs(20));
        assert_eq!(m.completed(), 2);
        let s = m.snapshot(Millis::from_mins(10), Money::from_dollars(1.0), 1, 2);
        assert_eq!(s.sla_violations, 1);
        assert!((s.violation_rate - 0.5).abs() < 1e-12);
        assert!(s.penalty.approx_eq(Money::from_dollars(0.60), 1e-9));
        assert_eq!(s.in_flight, 0);
        // $1.60 over 1/6 hour = $9.60/h.
        assert!((s.dollars_per_hour - 9.6).abs() < 1e-9);
        assert_eq!(s.queueing.max, Millis::from_secs(80));
    }

    #[test]
    fn empty_collector_snapshots_zeroes() {
        let m = MetricsCollector::new(goal());
        let s = m.snapshot(Millis::ZERO, Money::ZERO, 0, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.violation_rate, 0.0);
        assert_eq!(s.dollars_per_hour, 0.0);
        assert_eq!(s.latency, LatencySummary::default());
    }

    #[test]
    fn decision_latency_percentiles() {
        let mut m = MetricsCollector::new(goal());
        for i in 1..=100 {
            m.decision(i as f64 / 1000.0);
        }
        let s = m.snapshot(Millis::from_secs(1), Money::ZERO, 0, 0);
        assert!((s.mean_decision_secs - 0.0505).abs() < 1e-9);
        assert!((s.p95_decision_secs - 0.095).abs() < 1e-12);
    }
}
