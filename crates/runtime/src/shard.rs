//! N-way tenant-partitioned scheduling: parallel planning over an
//! epoch-snapshot cluster view.
//!
//! The serve layer funnels every request through one scheduler thread
//! because [`WorkloadService`] is single-threaded by construction — one
//! `MultiScheduler`, one `LiveCluster`, one lock-free owner. That thread
//! is the scalability ceiling. [`ShardedService`] removes it by
//! exploiting the seam the multi-tenant design already has: **classes are
//! independent at plan time**. Each tenant class's batch is planned by
//! its own `OnlineScheduler` against a read-only view of the fleet, so
//! the plan calls — the expensive part of the loop — can run on parallel
//! worker threads while the cluster, billing, and metrics stay under one
//! owner.
//!
//! A scheduling **tick** processes a set of per-class arrival groups in
//! three phases:
//!
//! 1. **Admit (serial)** — in tick order, each group's arrivals advance
//!    the virtual clock and pass admission individually, with newcomers
//!    admitted by earlier groups of the same tick folded into the load
//!    signals; admitted newcomers get stream ids and the class's
//!    unstarted work is recalled.
//! 2. **Plan (parallel)** — one immutable [`ClusterSnapshot`] is taken
//!    (the tick's *epoch*) and converted to a [`ClusterView`] shared as
//!    an `Arc`; each group is fanned out to the shard that owns its class
//!    and planned there by the class's own scheduler. Shards never touch
//!    — or lock — the live cluster.
//! 3. **Merge (serial)** — plans are validated and applied to the one
//!    `LiveCluster` in **tick order** (the order the groups were given,
//!    *not* shard order), so billing, completions, and metrics come out
//!    identical no matter how classes are spread over shards.
//!
//! ## Determinism
//!
//! A group's plan depends only on the epoch snapshot, the group's batch,
//! and its class's scheduler state — none of which depend on the shard
//! count or the class→shard assignment. The merge applies plans in tick
//! order, which is also assignment-independent. Hence the sharded service
//! produces **bit-identical** verdicts, completions, bills, and metrics
//! for *any* shard count — and the single-group path
//! ([`offer_batch_as`](ShardedService::offer_batch_as)) runs the exact
//! [`offer_batch_with`] pipeline of the unsharded service, making the
//! 1-shard case bit-identical to [`WorkloadService`] by shared code, not
//! by argument. It also means the greedy load-skew **rebalancer** (which
//! moves hot classes between shards on a wall-clock EMA, an inherently
//! nondeterministic signal) can never perturb outputs: it only changes
//! *where* a plan is computed.
//!
//! [`ClusterSnapshot`]: wisedb_sim::ClusterSnapshot

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use wisedb_advisor::multi::MultiScheduler;
use wisedb_advisor::online::{
    ArrivalPlan, ClusterView, OnlineConfig, OnlineScheduler, PendingArrival,
};
use wisedb_advisor::{DecisionModel, TrainingArtifacts};
use wisedb_core::{
    ArrivingQuery, CoreError, CoreResult, MetricsSnapshot, Millis, SlaClass, SpecHandle,
    TemplateId, TenantId, WorkloadSpec,
};
use wisedb_sim::{Completion, LiveCluster};

use crate::service::{
    offer_batch_with, OfferOutcome, RuntimeConfig, ServiceCore, StreamReport, WorkloadService,
};

/// The load signal the rebalancer ranks shards and classes by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSignal {
    /// Wall-clock planning time per tick (microseconds) — the honest
    /// production signal, but machine-dependent.
    PlanTime,
    /// Planned batch size per tick — a deterministic proxy for plan cost,
    /// used where reproducible rebalance counts matter (tests, the
    /// regress harness).
    BatchSize,
}

/// Configuration of a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of scheduler shards (planner worker threads). `0` is
    /// treated as `1`; one shard still exercises the full tick pipeline
    /// (snapshot, fan-out, merge) on multi-group ticks.
    pub shards: usize,
    /// Check for load skew every this many ticks (`0` disables
    /// rebalancing entirely).
    pub rebalance_every: u64,
    /// EMA smoothing factor in `(0, 1]` for the per-shard and per-class
    /// load averages; higher weighs recent ticks more.
    pub ema_alpha: f64,
    /// Rebalance when the hottest shard's load EMA exceeds the coldest's
    /// by this factor (and the hot shard has at least two classes).
    pub skew_threshold: f64,
    /// What "load" means; see [`LoadSignal`].
    pub signal: LoadSignal,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            rebalance_every: 64,
            ema_alpha: 0.2,
            skew_threshold: 2.0,
            signal: LoadSignal::PlanTime,
        }
    }
}

impl ShardConfig {
    /// A config with `shards` shards and everything else default.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }
}

/// One class group of a scheduling tick: the class plus its arrivals
/// (`(template, at)` pairs in non-decreasing `at` order; groups must also
/// be tick-ordered by their first arrival).
pub type TickGroup = (TenantId, Vec<(TemplateId, Millis)>);

/// A planning task shipped to a shard worker: the class's scheduler
/// travels with the batch and comes back with the plan.
struct PlanTask {
    /// Position of the group in the tick (the merge order).
    seq: usize,
    class: TenantId,
    scheduler: OnlineScheduler,
    batch: Vec<PendingArrival>,
    planned_at: Millis,
}

/// A planned task on its way back from a worker.
struct PlannedTask {
    seq: usize,
    class: TenantId,
    scheduler: OnlineScheduler,
    result: CoreResult<ArrivalPlan>,
    plan_secs: f64,
    batch_len: usize,
}

/// One epoch's work for one shard.
struct ShardJob {
    shard: usize,
    epoch: u64,
    view: Arc<ClusterView>,
    tasks: Vec<PlanTask>,
}

/// One shard's finished epoch.
struct ShardDone {
    shard: usize,
    /// Wall-clock microseconds the shard spent planning this epoch.
    plan_us: u64,
    tasks: Vec<PlannedTask>,
}

/// A persistent shard worker thread. Dropping it closes its job channel,
/// which ends the worker's loop; the join on drop is what makes
/// [`ShardedService`] safe to dismantle at any point between ticks.
struct ShardWorker {
    tx: Option<Sender<ShardJob>>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn spawn_worker(shard: usize, done_tx: Sender<ShardDone>) -> ShardWorker {
    let (tx, rx): (Sender<ShardJob>, Receiver<ShardJob>) = channel();
    let handle = std::thread::Builder::new()
        .name(format!("wisedb-shard-{shard}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                let mut span = wisedb_obs::span("shard.plan");
                if span.recording() {
                    span.attr_u64("shard", job.shard as u64);
                    span.attr_u64("epoch", job.epoch);
                    span.attr_u64("groups", job.tasks.len() as u64);
                }
                let started = Instant::now();
                let mut done = Vec::with_capacity(job.tasks.len());
                for mut task in job.tasks {
                    let t0 = Instant::now();
                    let result =
                        task.scheduler
                            .plan_arrivals(&job.view, &task.batch, task.planned_at);
                    done.push(PlannedTask {
                        seq: task.seq,
                        class: task.class,
                        scheduler: task.scheduler,
                        result,
                        plan_secs: t0.elapsed().as_secs_f64(),
                        batch_len: task.batch.len(),
                    });
                }
                drop(span);
                let finished = ShardDone {
                    shard: job.shard,
                    plan_us: started.elapsed().as_micros() as u64,
                    tasks: done,
                };
                if done_tx.send(finished).is_err() {
                    // The service is gone; schedulers die with the batch.
                    break;
                }
            }
        })
        .expect("spawning a shard worker thread succeeds");
    ShardWorker {
        tx: Some(tx),
        handle: Some(handle),
    }
}

/// Aggregate counters of a sharded run; see
/// [`stats`](ShardedService::stats).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Configured shard count.
    pub shards: usize,
    /// Scheduling ticks processed (single-group fast-path calls count as
    /// one-group ticks).
    pub ticks: u64,
    /// Epochs snapshotted — multi-group ticks that reached the parallel
    /// plan phase.
    pub epochs: u64,
    /// Plan calls issued across all shards (deterministic for a fixed
    /// trace and tick structure).
    pub decisions: u64,
    /// Plans validated and applied by the merge step (deterministic).
    pub merged_plans: u64,
    /// Greedy class moves the rebalancer performed.
    pub rebalances: u64,
    /// Per-shard lanes, indexed by shard id.
    pub per_shard: Vec<ShardLaneStats>,
}

/// One shard's slice of [`ShardStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLaneStats {
    /// Classes currently assigned to this shard.
    pub classes: Vec<TenantId>,
    /// Plan calls this shard has executed.
    pub decisions: u64,
    /// The shard's current load EMA (microseconds or batch size,
    /// depending on [`ShardConfig::signal`]).
    pub load_ema: f64,
}

/// A tenant-partitioned [`WorkloadService`]: per-class planning fans out
/// to N persistent shard workers against an epoch-snapshot cluster view,
/// and a serial merge keeps the virtual clock, billing, completions, and
/// metrics bit-identical to the unsharded service. See the module docs
/// for the phase/determinism story.
pub struct ShardedService {
    core: ServiceCore,
    spec: SpecHandle,
    classes: Vec<SlaClass>,
    online: OnlineConfig,
    /// Class schedulers, indexed by [`TenantId`]. A slot is `None` only
    /// while its scheduler is out planning on a worker (within one
    /// `offer_tick` call); between ticks every scheduler is home.
    schedulers: Vec<Option<OnlineScheduler>>,
    /// Class → shard, rewritten by the rebalancer.
    assignment: Vec<usize>,
    config: ShardConfig,
    workers: Vec<ShardWorker>,
    done_rx: Receiver<ShardDone>,
    epoch: u64,
    ticks: u64,
    decisions: u64,
    merged_plans: u64,
    rebalances: u64,
    /// Per-shard load EMA under the configured signal.
    shard_ema: Vec<f64>,
    /// Per-shard plan-call counters.
    shard_decisions: Vec<u64>,
    /// Per-class load EMA (what the rebalancer moves by).
    class_ema: Vec<f64>,
}

impl WorkloadService {
    /// Converts this service into a [`ShardedService`] with `config`'s
    /// shard layout. The books (cluster, metrics, ledgers) and every
    /// class scheduler move over untouched, so the sharded service
    /// continues the same session — and
    /// [`ShardedService::into_service`] is the exact inverse.
    pub fn into_sharded(self, config: ShardConfig) -> ShardedService {
        let (scheduler, core) = self.into_parts();
        let (spec, classes, schedulers, online) = scheduler.into_parts();
        ShardedService::assemble(core, spec, classes, schedulers, online, config)
    }
}

impl ShardedService {
    /// Trains one model per class and opens a sharded service directly —
    /// [`WorkloadService::train_classes`] followed by
    /// [`into_sharded`](WorkloadService::into_sharded).
    pub fn train_classes(
        spec: impl Into<SpecHandle>,
        classes: Vec<SlaClass>,
        runtime: RuntimeConfig,
        config: ShardConfig,
    ) -> CoreResult<Self> {
        Ok(WorkloadService::train_classes(spec, classes, runtime)?.into_sharded(config))
    }

    fn assemble(
        core: ServiceCore,
        spec: SpecHandle,
        classes: Vec<SlaClass>,
        schedulers: Vec<OnlineScheduler>,
        online: OnlineConfig,
        mut config: ShardConfig,
    ) -> Self {
        config.shards = config.shards.max(1);
        let shards = config.shards;
        let (done_tx, done_rx) = channel();
        let workers = (0..shards)
            .map(|s| spawn_worker(s, done_tx.clone()))
            .collect();
        let n = classes.len();
        ShardedService {
            core,
            spec,
            classes,
            online,
            schedulers: schedulers.into_iter().map(Some).collect(),
            // Round-robin start; the rebalancer refines it under load.
            assignment: (0..n).map(|c| c % shards).collect(),
            config,
            workers,
            done_rx,
            epoch: 0,
            ticks: 0,
            decisions: 0,
            merged_plans: 0,
            rebalances: 0,
            shard_ema: vec![0.0; shards],
            shard_decisions: vec![0; shards],
            class_ema: vec![0.0; n],
        }
    }

    /// Dismantles the sharded service back into a plain
    /// [`WorkloadService`] — same books, same schedulers (caches intact).
    /// Workers are joined; the tick counters are dropped.
    pub fn into_service(self) -> WorkloadService {
        let ShardedService {
            core,
            classes,
            schedulers,
            online,
            workers,
            ..
        } = self;
        drop(workers);
        let schedulers = schedulers
            .into_iter()
            .map(|s| s.expect("schedulers are home between ticks"))
            .collect();
        let scheduler = MultiScheduler::with_schedulers(classes, schedulers, online)
            .expect("the parts came from a valid MultiScheduler");
        WorkloadService::from_parts(scheduler, core)
    }

    /// The workload specification in force.
    pub fn spec(&self) -> &WorkloadSpec {
        self.core.cluster.spec()
    }

    /// The configured SLA classes, indexed by [`TenantId`].
    pub fn classes(&self) -> &[SlaClass] {
        &self.classes
    }

    /// One class's scheduler (base model + caches).
    pub fn scheduler(&self, class: TenantId) -> CoreResult<&OnlineScheduler> {
        self.schedulers
            .get(class.index())
            .and_then(|s| s.as_ref())
            .ok_or(CoreError::UnknownTenantClass { class })
    }

    /// The current virtual time.
    pub fn now(&self) -> Millis {
        self.core.cluster.now()
    }

    /// The runtime configuration the service was opened with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.core.config
    }

    /// The shard layout configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.config
    }

    /// The live cluster session (fleet state, running bill).
    pub fn cluster(&self) -> &LiveCluster {
        &self.core.cluster
    }

    /// Current class → shard assignment, indexed by [`TenantId`].
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Aggregate shard counters: ticks, epochs, plan calls, merges,
    /// rebalances, and per-shard lanes. `decisions` and `merged_plans`
    /// are deterministic for a fixed trace and tick structure;
    /// `rebalances` is too under [`LoadSignal::BatchSize`].
    pub fn stats(&self) -> ShardStats {
        let per_shard = (0..self.config.shards)
            .map(|s| ShardLaneStats {
                classes: (0..self.assignment.len())
                    .filter(|&c| self.assignment[c] == s)
                    .map(|c| TenantId(c as u32))
                    .collect(),
                decisions: self.shard_decisions[s],
                load_ema: self.shard_ema[s],
            })
            .collect();
        ShardStats {
            shards: self.config.shards,
            ticks: self.ticks,
            epochs: self.epoch,
            decisions: self.decisions,
            merged_plans: self.merged_plans,
            rebalances: self.rebalances,
            per_shard,
        }
    }

    /// A metrics snapshot at the current virtual instant, with per-class
    /// rows carrying the cluster's dollar attribution.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    /// Completions observed so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.core.completions
    }

    /// Runs everything still queued to completion.
    pub fn drain(&mut self) {
        self.core.drain();
    }

    /// Hot-swaps one class's decision model; semantics identical to
    /// [`WorkloadService::swap_model`] (the new model, with fresh caches,
    /// plans that class's next batch). The model must match the service's
    /// spec and the class's goal.
    pub fn swap_model(
        &mut self,
        class: TenantId,
        model: DecisionModel,
        artifacts: TrainingArtifacts,
    ) -> CoreResult<()> {
        let result = (|| {
            let slot = self
                .classes
                .get(class.index())
                .ok_or(CoreError::UnknownTenantClass { class })?;
            if *model.spec_handle() != self.spec {
                return Err(CoreError::ModelMismatch {
                    detail: format!("model spec differs from the service spec ({class})"),
                });
            }
            if *model.goal_handle() != slot.goal {
                return Err(CoreError::ModelMismatch {
                    detail: format!("model goal differs from {class}'s SLA goal"),
                });
            }
            self.schedulers[class.index()] = Some(OnlineScheduler::with_model(
                model,
                artifacts,
                self.online.clone(),
            ));
            Ok(())
        })();
        wisedb_obs::counter_add("wisedb_runtime_model_swaps_total", 1);
        wisedb_obs::instant("runtime.swap_model")
            .virt(self.core.cluster.now())
            .attr_u64("class", class.index() as u64)
            .attr_bool("applied", result.is_ok())
            .emit();
        result
    }

    /// Offers one arrival of an SLA class at virtual time `at`. Returns
    /// `true` if admitted — exactly [`WorkloadService::offer_as`].
    pub fn offer_as(
        &mut self,
        template: TemplateId,
        class: TenantId,
        at: Millis,
    ) -> CoreResult<bool> {
        let outcomes = self.offer_batch_as(class, &[(template, at)])?;
        Ok(outcomes[0] == OfferOutcome::Admitted)
    }

    /// Offers one same-class burst — a one-group tick. This is the
    /// unsharded [`WorkloadService::offer_batch_as`] pipeline verbatim
    /// (same admission, recall, live view, plan, apply), with the plan
    /// computed inline by the class's own scheduler: with a single group
    /// there is nothing to parallelize, and routing through a worker
    /// would only add a channel round trip. Bit-identical to the
    /// unsharded service for every shard count — by shared code.
    pub fn offer_batch_as(
        &mut self,
        class: TenantId,
        arrivals: &[(TemplateId, Millis)],
    ) -> CoreResult<Vec<OfferOutcome>> {
        if arrivals.is_empty() {
            return Ok(Vec::new());
        }
        let mut batch_span = wisedb_obs::span("runtime.offer_batch");
        if batch_span.recording() {
            batch_span.attr_u64("class", class.index() as u64);
            batch_span.attr_u64("arrivals", arrivals.len() as u64);
            batch_span.virt(arrivals[arrivals.len() - 1].1);
        }
        let sla = self
            .classes
            .get(class.index())
            .ok_or(CoreError::UnknownTenantClass { class })?;
        for &(template, _) in arrivals {
            if !sla.allows(template) {
                return Err(CoreError::TemplateNotInClass { template, class });
            }
        }
        let priority = sla.priority;
        let scheduler = self.schedulers[class.index()]
            .as_mut()
            .expect("schedulers are home between ticks");

        let started = Instant::now();
        let mut planned = false;
        let result = offer_batch_with(
            &mut self.core,
            class,
            priority,
            arrivals,
            |view, batch, at| {
                planned = true;
                scheduler.plan_arrivals(view, batch, at)
            },
        );

        // Account the fast path as a one-group tick so the stats and the
        // rebalancer see workloads driven through offer_as/run_stream too.
        self.ticks += 1;
        if planned {
            let shard = self.assignment[class.index()];
            self.decisions += 1;
            self.shard_decisions[shard] += 1;
            wisedb_obs::counter_add("wisedb_shard_decisions_total", 1);
            if result.is_ok() {
                self.merged_plans += 1;
                wisedb_obs::counter_add("wisedb_shard_merged_plans_total", 1);
            }
            let load = match self.config.signal {
                LoadSignal::PlanTime => started.elapsed().as_micros() as f64,
                LoadSignal::BatchSize => arrivals.len() as f64,
            };
            self.fold_load(&[(shard, class, load)]);
        }
        self.maybe_rebalance();
        result
    }

    /// Processes one multi-group scheduling tick: admit every group in
    /// tick order, snapshot the cluster once (epoch), plan all groups in
    /// parallel on the shard workers, and merge the plans back in tick
    /// order. Returns one verdict list per input group, aligned with
    /// `groups`; a group whose class is unknown, whose template falls
    /// outside the class subset, or whose plan fails gets an `Err` —
    /// other groups proceed (failed groups roll back their recall, like
    /// a failed unsharded burst).
    ///
    /// Groups should be tick-ordered (non-decreasing first-arrival
    /// times); the same class may appear more than once (later groups of
    /// a class simply recall nothing). The outer error fires only on
    /// infrastructure failure (a dead worker), which poisons the tick.
    #[allow(clippy::type_complexity)]
    pub fn offer_tick(
        &mut self,
        groups: &[TickGroup],
    ) -> CoreResult<Vec<CoreResult<Vec<OfferOutcome>>>> {
        if groups.is_empty() {
            return Ok(Vec::new());
        }
        self.ticks += 1;
        let mut results: Vec<Option<CoreResult<Vec<OfferOutcome>>>> = Vec::new();
        results.resize_with(groups.len(), || None);

        // Phase 1 — admit serially in tick order. Newcomers admitted by
        // earlier groups are folded into later groups' admission signals
        // (total and same-class), mirroring how one serial burst's own
        // earlier arrivals gate its later ones.
        struct Prepared {
            seq: usize,
            class: TenantId,
            outcomes: Vec<OfferOutcome>,
            admitted: usize,
            planned_at: Millis,
            first_id: usize,
            batch: Vec<PendingArrival>,
            recalled: Vec<wisedb_sim::RecalledQuery>,
        }
        let mut prepared: Vec<Prepared> = Vec::new();
        let mut carried = 0usize;
        let mut carried_of = vec![0usize; self.classes.len()];
        for (seq, (class, arrivals)) in groups.iter().enumerate() {
            let class = *class;
            let Some(sla) = self.classes.get(class.index()) else {
                results[seq] = Some(Err(CoreError::UnknownTenantClass { class }));
                continue;
            };
            if let Some(&(template, _)) = arrivals.iter().find(|&&(t, _)| !sla.allows(t)) {
                results[seq] = Some(Err(CoreError::TemplateNotInClass { template, class }));
                continue;
            }
            if arrivals.is_empty() {
                results[seq] = Some(Ok(Vec::new()));
                continue;
            }
            let (outcomes, admitted) = self.core.admit_burst(
                class,
                sla.priority,
                arrivals,
                carried,
                carried_of[class.index()],
            );
            if admitted.is_empty() {
                results[seq] = Some(Ok(outcomes));
                continue;
            }
            carried += admitted.len();
            carried_of[class.index()] += admitted.len();
            let planned_at = admitted[admitted.len() - 1].1;
            let (first_id, batch, recalled) = self.core.prepare_batch(class, &admitted);
            prepared.push(Prepared {
                seq,
                class,
                outcomes,
                admitted: admitted.len(),
                planned_at,
                first_id,
                batch,
                recalled,
            });
        }
        if prepared.is_empty() {
            self.maybe_rebalance();
            return Ok(results
                .into_iter()
                .map(|r| r.expect("every group settled"))
                .collect());
        }

        // Phase 2 — one epoch snapshot, fanned out by class assignment.
        self.epoch += 1;
        let snap = self.core.cluster.snapshot();
        let open_target = snap.open_vm.as_ref().map(|(index, _)| *index);
        let target_type = snap.open_vm.as_ref().map(|(_, view)| view.vm_type);
        let view = Arc::new(ClusterView {
            vms_rented: snap.vms_provisioned as u32,
            open_vm: snap.open_vm.map(|(_, view)| view),
        });

        let mut meta: Vec<(
            usize,
            Vec<OfferOutcome>,
            usize,
            usize,
            Vec<wisedb_sim::RecalledQuery>,
        )> = Vec::new();
        let mut by_shard: Vec<Vec<PlanTask>> =
            (0..self.config.shards).map(|_| Vec::new()).collect();
        for p in prepared {
            let shard = self.assignment[p.class.index()];
            let scheduler = self.schedulers[p.class.index()]
                .take()
                .expect("one scheduler per class, taken at most once per tick");
            by_shard[shard].push(PlanTask {
                seq: p.seq,
                class: p.class,
                scheduler,
                batch: p.batch,
                planned_at: p.planned_at,
            });
            meta.push((p.seq, p.outcomes, p.admitted, p.first_id, p.recalled));
        }
        let mut jobs_sent = 0usize;
        for (shard, tasks) in by_shard.into_iter().enumerate() {
            if tasks.is_empty() {
                continue;
            }
            self.shard_decisions[shard] += tasks.len() as u64;
            self.decisions += tasks.len() as u64;
            wisedb_obs::counter_add("wisedb_shard_decisions_total", tasks.len() as u64);
            let job = ShardJob {
                shard,
                epoch: self.epoch,
                view: Arc::clone(&view),
                tasks,
            };
            self.workers[shard]
                .tx
                .as_ref()
                .expect("workers hold their sender until drop")
                .send(job)
                .map_err(|_| CoreError::InconsistentPlan {
                    detail: format!("shard {shard} worker is gone"),
                })?;
            jobs_sent += 1;
        }
        let mut planned: Vec<PlannedTask> = Vec::new();
        let mut loads: Vec<(usize, TenantId, f64)> = Vec::new();
        for _ in 0..jobs_sent {
            let done = self
                .done_rx
                .recv()
                .map_err(|_| CoreError::InconsistentPlan {
                    detail: "a shard worker died mid-epoch".to_string(),
                })?;
            for task in &done.tasks {
                let load = match self.config.signal {
                    LoadSignal::PlanTime => task.plan_secs * 1e6,
                    LoadSignal::BatchSize => task.batch_len as f64,
                };
                loads.push((done.shard, task.class, load));
            }
            wisedb_obs::observe_us("wisedb_shard_plan_us", done.plan_us);
            planned.extend(done.tasks);
        }
        planned.sort_by_key(|t| t.seq);

        // Phase 3 — merge in tick order: validate + apply each plan
        // against the live cluster; assignments before a plan's first
        // provision target the epoch's open VM.
        let mut merge_span = wisedb_obs::span("shard.merge");
        if merge_span.recording() {
            merge_span.attr_u64("epoch", self.epoch);
            merge_span.attr_u64("plans", planned.len() as u64);
            merge_span.virt(snap.now);
        }
        for task in planned {
            let PlannedTask {
                seq,
                class,
                scheduler,
                result,
                plan_secs,
                ..
            } = task;
            self.schedulers[class.index()] = Some(scheduler);
            let (_, outcomes, admitted, first_id, recalled) = meta
                .iter()
                .position(|(s, ..)| *s == seq)
                .map(|i| meta.swap_remove(i))
                .expect("every planned task was prepared");
            let group_result = match result {
                Ok(plan) => {
                    self.core.metrics.decision(plan_secs);
                    wisedb_obs::observe_us("wisedb_runtime_decision_us", (plan_secs * 1e6) as u64);
                    match self.core.validate_plan(&plan, target_type) {
                        Ok(()) => self
                            .core
                            .apply_plan(class, plan, open_target, admitted)
                            .map(|()| {
                                self.merged_plans += 1;
                                wisedb_obs::counter_add("wisedb_shard_merged_plans_total", 1);
                                outcomes
                            }),
                        Err(err) => self.core.rollback_offer(recalled, first_id, admitted, err),
                    }
                }
                Err(err) => self.core.rollback_offer(recalled, first_id, admitted, err),
            };
            results[seq] = Some(group_result);
        }
        drop(merge_span);

        self.fold_load(&loads);
        self.maybe_rebalance();
        Ok(results
            .into_iter()
            .map(|r| r.expect("every group settled"))
            .collect())
    }

    /// Replays a class-tagged arrival stream in ticks of up to
    /// `tick_size` arrivals: each chunk is grouped by class (one group
    /// per class, first-appearance order) and processed as one
    /// [`offer_tick`](Self::offer_tick), then the cluster drains. With
    /// `tick_size <= 1` every arrival is its own one-group tick, which is
    /// bit-identical to [`WorkloadService::run_stream`].
    pub fn run_ticked(
        &mut self,
        stream: &[ArrivingQuery],
        tick_size: usize,
    ) -> CoreResult<StreamReport> {
        let tick_size = tick_size.max(1);
        for chunk in stream.chunks(tick_size) {
            let mut groups: Vec<TickGroup> = Vec::new();
            for q in chunk {
                match groups.iter_mut().find(|(c, _)| *c == q.class) {
                    Some((_, arrivals)) => arrivals.push((q.template, q.arrival)),
                    None => groups.push((q.class, vec![(q.template, q.arrival)])),
                }
            }
            if let [(class, arrivals)] = &groups[..] {
                // One class in the chunk: nothing to fan out — take the
                // inline fast path (the unsharded pipeline verbatim).
                self.offer_batch_as(*class, arrivals)?;
            } else {
                for result in self.offer_tick(&groups)? {
                    result?;
                }
            }
        }
        self.drain();
        Ok(StreamReport {
            snapshots: Vec::new(),
            last: self.snapshot(),
            completions: self.core.completions.clone(),
        })
    }

    /// Replays an explicit arrival stream one arrival at a time — the
    /// unsharded [`WorkloadService::run_stream`] loop on the sharded
    /// fast path.
    pub fn run_stream(&mut self, stream: &[ArrivingQuery]) -> CoreResult<StreamReport> {
        self.run_ticked(stream, 1)
    }

    /// Folds one tick's per-(shard, class) load observations into the
    /// EMAs. Every shard decays each tick — idle shards drift toward
    /// zero, so a shard whose classes went quiet eventually reads cold.
    fn fold_load(&mut self, loads: &[(usize, TenantId, f64)]) {
        let alpha = self.config.ema_alpha.clamp(0.0, 1.0);
        let mut shard_load = vec![0.0f64; self.config.shards];
        let mut class_load = vec![0.0f64; self.classes.len()];
        for &(shard, class, load) in loads {
            shard_load[shard] += load;
            class_load[class.index()] += load;
        }
        for (ema, load) in self.shard_ema.iter_mut().zip(&shard_load) {
            *ema = alpha * load + (1.0 - alpha) * *ema;
        }
        for (ema, load) in self.class_ema.iter_mut().zip(&class_load) {
            *ema = alpha * load + (1.0 - alpha) * *ema;
        }
    }

    /// Greedy load-skew rebalancing: every `rebalance_every` ticks, if
    /// the hottest shard's EMA exceeds the coldest's by the skew
    /// threshold and the hot shard has at least two classes, move its
    /// hottest class to the coldest shard. Because plans are a function
    /// of (snapshot, batch, class scheduler) and merges run in tick
    /// order, moving a class never changes any output — only where its
    /// plans are computed.
    fn maybe_rebalance(&mut self) {
        let every = self.config.rebalance_every;
        if self.config.shards < 2 || every == 0 || self.ticks % every != 0 {
            return;
        }
        let (mut hot, mut cold) = (0usize, 0usize);
        for s in 1..self.config.shards {
            if self.shard_ema[s] > self.shard_ema[hot] {
                hot = s;
            }
            if self.shard_ema[s] < self.shard_ema[cold] {
                cold = s;
            }
        }
        if hot == cold || self.shard_ema[hot] <= self.config.skew_threshold * self.shard_ema[cold] {
            return;
        }
        let mover = (0..self.assignment.len())
            .filter(|&c| self.assignment[c] == hot)
            .max_by(|&a, &b| {
                self.class_ema[a]
                    .partial_cmp(&self.class_ema[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        let hot_classes = self.assignment.iter().filter(|&&s| s == hot).count();
        let Some(mover) = mover else { return };
        if hot_classes < 2 {
            return;
        }
        self.assignment[mover] = cold;
        self.rebalances += 1;
        wisedb_obs::counter_add("wisedb_shard_rebalances_total", 1);
        wisedb_obs::instant("shard.rebalance")
            .virt(self.core.cluster.now())
            .attr_u64("class", mover as u64)
            .attr_u64("from", hot as u64)
            .attr_u64("to", cold as u64)
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate_class_stream, merge_streams, PoissonProcess, TemplateMix};
    use wisedb_advisor::ModelConfig;
    use wisedb_core::{GoalKind, MetricsSnapshot, PerformanceGoal, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn config() -> RuntimeConfig {
        RuntimeConfig {
            online: OnlineConfig {
                training: ModelConfig {
                    num_samples: 40,
                    sample_size: 5,
                    seed: 3,
                    ..ModelConfig::fast()
                },
                ..OnlineConfig::default()
            },
            ..RuntimeConfig::default()
        }
    }

    fn three_classes(spec: &WorkloadSpec) -> Vec<SlaClass> {
        vec![
            SlaClass::new(
                "gold",
                PerformanceGoal::paper_default(GoalKind::PerQuery, spec).unwrap(),
            )
            .with_priority(2),
            SlaClass::new(
                "silver",
                PerformanceGoal::paper_default(GoalKind::MaxLatency, spec).unwrap(),
            )
            .with_priority(1),
            SlaClass::new(
                "bronze",
                PerformanceGoal::paper_default(GoalKind::AverageLatency, spec).unwrap(),
            ),
        ]
    }

    fn tagged_stream(n_per_class: usize) -> Vec<ArrivingQuery> {
        let streams = (0..3)
            .map(|c| {
                let mut process =
                    PoissonProcess::per_second(0.02 + 0.01 * c as f64, TemplateMix::uniform(2));
                generate_class_stream(&mut process, n_per_class, 100 + c as u64, TenantId(c))
            })
            .collect();
        merge_streams(streams)
    }

    /// Decision latency is wall-clock (reported, never steering), so it is
    /// the one legitimately nondeterministic snapshot field.
    fn scrub(mut s: MetricsSnapshot) -> MetricsSnapshot {
        s.mean_decision_secs = 0.0;
        s.p95_decision_secs = 0.0;
        s
    }

    #[test]
    fn one_shard_stream_is_bit_identical_to_unsharded() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut process = PoissonProcess::per_second(0.05, TemplateMix::uniform(2));
        let stream = crate::arrivals::generate_stream(&mut process, 20, 77);

        let mut plain = WorkloadService::train(spec.clone(), goal.clone(), config()).unwrap();
        let plain_report = plain.run_stream(&stream).unwrap();

        let mut sharded = WorkloadService::train(spec, goal, config())
            .unwrap()
            .into_sharded(ShardConfig::default());
        let sharded_report = sharded.run_stream(&stream).unwrap();

        assert_eq!(plain_report.completions, sharded_report.completions);
        assert_eq!(scrub(plain_report.last), scrub(sharded_report.last));
        let stats = sharded.stats();
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.ticks, 20);
        assert_eq!(stats.decisions, 20);
        assert_eq!(stats.merged_plans, 20);
        assert_eq!(stats.epochs, 0, "one-group ticks take the fast path");
    }

    #[test]
    fn multi_group_ticks_are_deterministic_across_shard_counts() {
        let spec = spec();
        let classes = three_classes(&spec);
        let stream = tagged_stream(8);

        let mut reports = Vec::new();
        let mut stats = Vec::new();
        for shards in [1usize, 2, 3] {
            let mut svc = ShardedService::train_classes(
                spec.clone(),
                classes.clone(),
                config(),
                ShardConfig::with_shards(shards),
            )
            .unwrap();
            reports.push(svc.run_ticked(&stream, 4).unwrap());
            stats.push(svc.stats());
        }
        let last = scrub(reports[0].last.clone());
        for report in &reports[1..] {
            assert_eq!(reports[0].completions, report.completions);
            assert_eq!(last, scrub(report.last.clone()));
        }
        // The tick structure (and hence the plan-call count) is also
        // independent of the shard count.
        assert_eq!(stats[0].decisions, stats[1].decisions);
        assert_eq!(stats[1].decisions, stats[2].decisions);
        assert_eq!(stats[0].merged_plans, stats[2].merged_plans);
        assert_eq!(last.completed, 24);
    }

    #[test]
    fn ticked_replay_matches_per_arrival_replay_for_singleton_ticks() {
        let spec = spec();
        let classes = three_classes(&spec);
        let stream = tagged_stream(5);

        let mut plain =
            WorkloadService::train_classes(spec.clone(), classes.clone(), config()).unwrap();
        let plain_report = plain.run_stream(&stream).unwrap();

        let mut sharded =
            ShardedService::train_classes(spec, classes, config(), ShardConfig::with_shards(2))
                .unwrap();
        let sharded_report = sharded.run_ticked(&stream, 1).unwrap();

        assert_eq!(plain_report.completions, sharded_report.completions);
        assert_eq!(scrub(plain_report.last), scrub(sharded_report.last));
    }

    #[test]
    fn rebalancer_moves_classes_without_perturbing_outputs() {
        let spec = spec();
        let classes = three_classes(&spec);
        let stream = tagged_stream(10);
        let run = |shard_config: ShardConfig| {
            let mut svc = ShardedService::train_classes(
                spec.clone(),
                classes.clone(),
                config(),
                shard_config,
            )
            .unwrap();
            let report = svc.run_ticked(&stream, 3).unwrap();
            (report, svc.stats())
        };

        // BatchSize is the deterministic signal; an aggressive cadence and
        // threshold force moves on the skewed per-class tick sizes.
        let eager = ShardConfig {
            shards: 2,
            rebalance_every: 2,
            skew_threshold: 1.01,
            signal: LoadSignal::BatchSize,
            ..ShardConfig::default()
        };
        let frozen = ShardConfig {
            rebalance_every: 0,
            ..eager.clone()
        };
        let (moved, moved_stats) = run(eager);
        let (still, still_stats) = run(frozen);

        assert!(moved_stats.rebalances > 0, "the skewed trace forces a move");
        assert_eq!(still_stats.rebalances, 0);
        assert_eq!(moved.completions, still.completions);
        assert_eq!(scrub(moved.last), scrub(still.last));
        assert_eq!(moved_stats.decisions, still_stats.decisions);
    }

    #[test]
    fn tick_groups_fail_independently() {
        let spec = spec();
        let classes = three_classes(&spec);
        let mut svc =
            ShardedService::train_classes(spec, classes, config(), ShardConfig::with_shards(2))
                .unwrap();
        let at = Millis::from_secs(5);
        let results = svc
            .offer_tick(&[
                (TenantId(0), vec![(TemplateId(0), at)]),
                (TenantId(9), vec![(TemplateId(0), at)]),
                (TenantId(1), vec![(TemplateId(1), at)]),
            ])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap(), &vec![OfferOutcome::Admitted]);
        assert!(matches!(
            results[1],
            Err(CoreError::UnknownTenantClass { class: TenantId(9) })
        ));
        assert_eq!(results[2].as_ref().unwrap(), &vec![OfferOutcome::Admitted]);
        svc.drain();
        assert_eq!(svc.snapshot().completed, 2);
    }

    #[test]
    fn into_service_round_trips_mid_session() {
        let spec = spec();
        let classes = three_classes(&spec);
        let stream = tagged_stream(4);
        let (head, tail) = stream.split_at(6);

        let mut plain =
            WorkloadService::train_classes(spec.clone(), classes.clone(), config()).unwrap();
        for q in head {
            plain.offer_as(q.template, q.class, q.arrival).unwrap();
        }
        let mut sharded = plain.into_sharded(ShardConfig::with_shards(3));
        for q in tail {
            sharded.offer_as(q.template, q.class, q.arrival).unwrap();
        }
        let mut back = sharded.into_service();
        back.drain();

        let mut reference = WorkloadService::train_classes(spec, classes, config()).unwrap();
        let reference_report = reference.run_stream(&stream).unwrap();
        assert_eq!(back.completions(), &reference_report.completions[..]);
        assert_eq!(scrub(back.snapshot()), scrub(reference_report.last));
    }

    #[test]
    fn swap_model_rejects_mismatches_and_applies_matches() {
        let spec = spec();
        let classes = three_classes(&spec);
        let mut svc = ShardedService::train_classes(
            spec.clone(),
            classes,
            config(),
            ShardConfig::with_shards(2),
        )
        .unwrap();

        // A model trained for class 1's goal fits class 1, not class 0.
        let goal = svc.classes()[1].goal.clone();
        let generator = wisedb_advisor::ModelGenerator::new(
            svc.scheduler(TenantId(1))
                .unwrap()
                .base_model()
                .spec_handle()
                .clone(),
            goal,
            ModelConfig {
                num_samples: 40,
                sample_size: 5,
                seed: 9,
                ..ModelConfig::fast()
            },
        );
        let (model, artifacts) = generator.train_with_artifacts().unwrap();
        assert!(matches!(
            svc.swap_model(TenantId(0), model.clone(), artifacts.clone()),
            Err(CoreError::ModelMismatch { .. })
        ));
        assert!(matches!(
            svc.swap_model(TenantId(9), model.clone(), artifacts.clone()),
            Err(CoreError::UnknownTenantClass { .. })
        ));
        svc.swap_model(TenantId(1), model, artifacts).unwrap();
        assert!(svc
            .offer_as(TemplateId(0), TenantId(1), Millis::from_secs(1))
            .unwrap());
    }
}
