//! Pluggable arrival processes: the traffic shapes a streaming service
//! must survive.
//!
//! The paper's online experiments (§7.4) draw inter-arrival gaps from fixed
//! or normal distributions. A production advisor sees richer dynamics, so
//! the runtime models four families:
//!
//! * [`PoissonProcess`] — memoryless arrivals at a constant rate, the
//!   queueing-theory baseline.
//! * [`OnOffProcess`] — bursty traffic: trains of back-to-back queries
//!   separated by idle periods (an ON-OFF / interrupted-Poisson process).
//! * [`DiurnalProcess`] — a sinusoidally rate-modulated Poisson process,
//!   the day/night load curve.
//! * [`DriftProcess`] — constant rate but a template mix that drifts
//!   linearly from one distribution to another over a horizon, stressing
//!   model reuse under workload evolution.
//!
//! Every process is deterministic given the driving RNG, so whole runtime
//! runs replay bit-for-bit under a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wisedb_core::{ArrivingQuery, Millis, TemplateId, TenantId};

/// A probability distribution over query templates.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateMix {
    /// Normalized weights, indexed by [`TemplateId`].
    weights: Vec<f64>,
}

impl TemplateMix {
    /// A mix from raw non-negative weights (normalized internally).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative entry, or sums to zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "template mix needs at least one entry");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "template weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "template weights must not all be zero");
        TemplateMix {
            weights: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// The uniform mix over `n` templates.
    pub fn uniform(n: usize) -> Self {
        TemplateMix::new(vec![1.0; n])
    }

    /// A mix where template `hot` carries `share` of the probability mass
    /// and the rest is uniform.
    pub fn hot(n: usize, hot: usize, share: f64) -> Self {
        assert!(hot < n, "hot template out of range");
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        let rest = if n > 1 {
            (1.0 - share) / (n - 1) as f64
        } else {
            0.0
        };
        let mut weights = vec![rest; n];
        weights[hot] = if n > 1 { share } else { 1.0 };
        TemplateMix::new(weights)
    }

    /// Number of templates in the mix.
    pub fn num_templates(&self) -> usize {
        self.weights.len()
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Draws one template.
    pub fn sample(&self, rng: &mut StdRng) -> TemplateId {
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return TemplateId(i as u32);
            }
        }
        TemplateId(self.weights.len() as u32 - 1)
    }

    /// The pointwise interpolation `(1 − f)·a + f·b` (arities must match).
    pub fn lerp(a: &TemplateMix, b: &TemplateMix, f: f64) -> TemplateMix {
        assert_eq!(
            a.num_templates(),
            b.num_templates(),
            "interpolated mixes must cover the same templates"
        );
        let f = f.clamp(0.0, 1.0);
        TemplateMix::new(
            a.weights
                .iter()
                .zip(&b.weights)
                .map(|(wa, wb)| wa * (1.0 - f) + wb * f)
                .collect(),
        )
    }
}

/// A source of query arrivals for the streaming runtime.
pub trait ArrivalProcess {
    /// Short label for reports ("poisson@2/s", "bursty", ...).
    fn label(&self) -> String;

    /// Draws the gap to the next arrival after virtual time `now`, and the
    /// arriving query's template.
    fn next(&mut self, now: Millis, rng: &mut StdRng) -> (Millis, TemplateId);
}

/// An exponential gap with the given mean, in seconds (never exactly zero:
/// clamped to ≥ 1 ms so virtual time always advances).
fn exp_gap(mean_secs: f64, rng: &mut StdRng) -> Millis {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    Millis::from_secs_f64(-mean_secs * u.ln()).max(Millis::from_millis(1))
}

/// Memoryless arrivals at a constant rate.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    mean_gap_secs: f64,
    mix: TemplateMix,
}

impl PoissonProcess {
    /// Poisson arrivals at `rate` queries per second.
    pub fn per_second(rate: f64, mix: TemplateMix) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        PoissonProcess {
            mean_gap_secs: 1.0 / rate,
            mix,
        }
    }

    /// Poisson arrivals with the given mean inter-arrival gap.
    pub fn with_mean_gap(mean_secs: f64, mix: TemplateMix) -> Self {
        assert!(mean_secs > 0.0, "mean gap must be positive");
        PoissonProcess {
            mean_gap_secs: mean_secs,
            mix,
        }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn label(&self) -> String {
        format!("poisson@{:.2}/s", 1.0 / self.mean_gap_secs)
    }

    fn next(&mut self, _now: Millis, rng: &mut StdRng) -> (Millis, TemplateId) {
        (exp_gap(self.mean_gap_secs, rng), self.mix.sample(rng))
    }
}

/// Bursty ON-OFF arrivals: trains of `burst_len` queries with fast
/// intra-burst gaps, separated by long idle gaps.
#[derive(Debug, Clone)]
pub struct OnOffProcess {
    on_gap_secs: f64,
    off_gap_secs: f64,
    burst_len: usize,
    remaining_in_burst: usize,
    mix: TemplateMix,
}

impl OnOffProcess {
    /// Bursts of `burst_len` arrivals with mean intra-burst gap
    /// `on_gap_secs`, separated by idle periods with mean `off_gap_secs`.
    pub fn new(on_gap_secs: f64, off_gap_secs: f64, burst_len: usize, mix: TemplateMix) -> Self {
        assert!(
            on_gap_secs > 0.0 && off_gap_secs > 0.0,
            "gaps must be positive"
        );
        assert!(burst_len >= 1, "bursts need at least one query");
        OnOffProcess {
            on_gap_secs,
            off_gap_secs,
            burst_len,
            remaining_in_burst: 0,
            mix,
        }
    }
}

impl ArrivalProcess for OnOffProcess {
    fn label(&self) -> String {
        format!(
            "bursty[{}@{:.2}s/{:.1}s]",
            self.burst_len, self.on_gap_secs, self.off_gap_secs
        )
    }

    fn next(&mut self, _now: Millis, rng: &mut StdRng) -> (Millis, TemplateId) {
        let gap = if self.remaining_in_burst == 0 {
            self.remaining_in_burst = self.burst_len;
            exp_gap(self.off_gap_secs, rng)
        } else {
            exp_gap(self.on_gap_secs, rng)
        };
        self.remaining_in_burst -= 1;
        (gap, self.mix.sample(rng))
    }
}

/// A sinusoidally rate-modulated Poisson process (day/night curve):
/// `rate(t) = base · (1 + amplitude · sin(2πt / period))`.
#[derive(Debug, Clone)]
pub struct DiurnalProcess {
    base_rate_per_sec: f64,
    amplitude: f64,
    period: Millis,
    mix: TemplateMix,
}

impl DiurnalProcess {
    /// A diurnal process with the given base rate, relative amplitude in
    /// `[0, 1)`, and period.
    pub fn new(base_rate_per_sec: f64, amplitude: f64, period: Millis, mix: TemplateMix) -> Self {
        assert!(base_rate_per_sec > 0.0, "base rate must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1) so the rate stays positive"
        );
        assert!(!period.is_zero(), "period must be positive");
        DiurnalProcess {
            base_rate_per_sec,
            amplitude,
            period,
            mix,
        }
    }

    /// The instantaneous arrival rate at virtual time `t`.
    pub fn rate_at(&self, t: Millis) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / self.period.as_secs_f64();
        self.base_rate_per_sec * (1.0 + self.amplitude * phase.sin())
    }
}

impl ArrivalProcess for DiurnalProcess {
    fn label(&self) -> String {
        format!(
            "diurnal@{:.2}/s±{:.0}%",
            self.base_rate_per_sec,
            self.amplitude * 100.0
        )
    }

    fn next(&mut self, now: Millis, rng: &mut StdRng) -> (Millis, TemplateId) {
        // Exponential gap at the instantaneous rate — a first-order
        // approximation of the non-homogeneous process, accurate while the
        // gap is short against the period.
        let rate = self.rate_at(now);
        (exp_gap(1.0 / rate, rng), self.mix.sample(rng))
    }
}

/// Constant-rate arrivals whose template mix drifts linearly from `start`
/// to `end` over `horizon` (then stays at `end`).
#[derive(Debug, Clone)]
pub struct DriftProcess {
    mean_gap_secs: f64,
    start: TemplateMix,
    end: TemplateMix,
    horizon: Millis,
}

impl DriftProcess {
    /// A drifting process at `rate` queries/second.
    pub fn new(rate_per_sec: f64, start: TemplateMix, end: TemplateMix, horizon: Millis) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        assert!(!horizon.is_zero(), "drift horizon must be positive");
        assert_eq!(
            start.num_templates(),
            end.num_templates(),
            "drift endpoints must cover the same templates"
        );
        DriftProcess {
            mean_gap_secs: 1.0 / rate_per_sec,
            start,
            end,
            horizon,
        }
    }

    /// The mix in force at virtual time `t`.
    pub fn mix_at(&self, t: Millis) -> TemplateMix {
        let f = (t.as_secs_f64() / self.horizon.as_secs_f64()).clamp(0.0, 1.0);
        TemplateMix::lerp(&self.start, &self.end, f)
    }
}

impl ArrivalProcess for DriftProcess {
    fn label(&self) -> String {
        format!("drift@{:.2}/s", 1.0 / self.mean_gap_secs)
    }

    fn next(&mut self, now: Millis, rng: &mut StdRng) -> (Millis, TemplateId) {
        let gap = exp_gap(self.mean_gap_secs, rng);
        let template = self.mix_at(now + gap).sample(rng);
        (gap, template)
    }
}

/// Materializes the first `n` arrivals of a process as an explicit stream
/// (absolute arrival times, starting at the first drawn gap), tagged with
/// the default SLA class.
pub fn generate_stream(
    process: &mut dyn ArrivalProcess,
    n: usize,
    seed: u64,
) -> Vec<ArrivingQuery> {
    generate_class_stream(process, n, seed, TenantId::DEFAULT)
}

/// [`generate_stream`] with every arrival tagged as `class` — one tenant
/// population's traffic, ready to be [`merge_streams`]d with the others.
pub fn generate_class_stream(
    process: &mut dyn ArrivalProcess,
    n: usize,
    seed: u64,
    class: TenantId,
) -> Vec<ArrivingQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = Millis::ZERO;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (gap, template) = process.next(now, &mut rng);
        now += gap;
        out.push(ArrivingQuery::of_class(template, now, class));
    }
    out
}

/// Interleaves per-class streams into one time-ordered multi-tenant
/// stream. Ties on the arrival instant break by class id then template, so
/// the merge is deterministic regardless of input order.
pub fn merge_streams(streams: Vec<Vec<ArrivingQuery>>) -> Vec<ArrivingQuery> {
    let mut merged: Vec<ArrivingQuery> = streams.into_iter().flatten().collect();
    merged.sort_by_key(|a| (a.arrival, a.class, a.template));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap_secs(stream: &[ArrivingQuery]) -> f64 {
        let gaps: Vec<f64> = stream
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
            .collect();
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }

    #[test]
    fn poisson_hits_its_rate() {
        let mut p = PoissonProcess::per_second(4.0, TemplateMix::uniform(3));
        let stream = generate_stream(&mut p, 4000, 7);
        let m = mean_gap_secs(&stream);
        assert!((m - 0.25).abs() < 0.02, "mean gap {m}");
        assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mk = || PoissonProcess::per_second(2.0, TemplateMix::uniform(4));
        assert_eq!(
            generate_stream(&mut mk(), 100, 3),
            generate_stream(&mut mk(), 100, 3)
        );
        assert_ne!(
            generate_stream(&mut mk(), 100, 3),
            generate_stream(&mut mk(), 100, 4)
        );
    }

    #[test]
    fn bursty_gaps_are_bimodal() {
        let mut p = OnOffProcess::new(0.05, 10.0, 8, TemplateMix::uniform(2));
        let stream = generate_stream(&mut p, 800, 11);
        let gaps: Vec<f64> = stream
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
            .collect();
        let long = gaps.iter().filter(|&&g| g > 1.0).count();
        let short = gaps.iter().filter(|&&g| g <= 1.0).count();
        // Roughly one long idle gap per 8-query burst; the rest short.
        assert!(long > 50 && short > 500, "long={long} short={short}");
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let p = DiurnalProcess::new(2.0, 0.8, Millis::from_mins(10), TemplateMix::uniform(2));
        let peak = p.rate_at(Millis::from_mins(10) / 4); // sin = 1
        let trough = p.rate_at(Millis::from_mins(10) * 3 / 4); // sin = -1
        assert!(peak > 3.5 && trough < 0.5, "peak={peak} trough={trough}");
        // Empirically: early gaps (high-rate quarter) shorter than late.
        let mut proc = p.clone();
        let stream = generate_stream(&mut proc, 2000, 5);
        assert!(stream.last().unwrap().arrival > Millis::from_secs(60));
    }

    #[test]
    fn drift_moves_the_template_mix() {
        let n = 4;
        let start = TemplateMix::hot(n, 0, 0.9);
        let end = TemplateMix::hot(n, 3, 0.9);
        // 1600 arrivals at 2/s span ~800 s; the drift completes at 400 s,
        // so the last quarter samples the pure end mix.
        let horizon = Millis::from_secs(400);
        let mut p = DriftProcess::new(2.0, start, end, horizon);
        let stream = generate_stream(&mut p, 1600, 13);
        let quarter = stream.len() / 4;
        let hot0_early = stream[..quarter]
            .iter()
            .filter(|a| a.template == TemplateId(0))
            .count();
        let hot0_late = stream[stream.len() - quarter..]
            .iter()
            .filter(|a| a.template == TemplateId(0))
            .count();
        assert!(
            hot0_early > (hot0_late + 1) * 4,
            "template 0 should fade: early={hot0_early} late={hot0_late}"
        );
    }

    #[test]
    fn class_streams_tag_and_merge_in_time_order() {
        let mk = |rate: f64| PoissonProcess::per_second(rate, TemplateMix::uniform(2));
        let gold = generate_class_stream(&mut mk(1.0), 50, 7, TenantId(0));
        let bronze = generate_class_stream(&mut mk(2.0), 80, 8, TenantId(1));
        assert!(gold.iter().all(|a| a.class == TenantId(0)));
        assert!(bronze.iter().all(|a| a.class == TenantId(1)));
        let merged = merge_streams(vec![bronze.clone(), gold.clone()]);
        assert_eq!(merged.len(), 130);
        assert!(merged.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Merge order is input-order independent.
        assert_eq!(merged, merge_streams(vec![gold, bronze]));
        // Untagged generation is the default class.
        let plain = generate_stream(&mut mk(1.0), 5, 7);
        assert!(plain.iter().all(|a| a.class == TenantId::DEFAULT));
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = TemplateMix::hot(3, 1, 0.8);
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[mix.sample(&mut rng).index()] += 1;
        }
        assert!(counts[1] > 2100, "hot template under-drawn: {counts:?}");
        assert!(counts[0] > 100 && counts[2] > 100);
    }

    #[test]
    fn lerp_interpolates_midpoint() {
        let a = TemplateMix::new(vec![1.0, 0.0]);
        let b = TemplateMix::new(vec![0.0, 1.0]);
        let mid = TemplateMix::lerp(&a, &b, 0.5);
        assert!((mid.weights()[0] - 0.5).abs() < 1e-12);
    }
}
