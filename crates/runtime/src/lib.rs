//! # wisedb-runtime
//!
//! The streaming side of WiSeDB: an event-driven **online workload
//! management service** that runs the paper's §6.3 rescheduling loop
//! continuously against a live (simulated) IaaS cluster, instead of
//! replaying a pre-recorded arrival list batch-at-a-time.
//!
//! * [`arrivals`] — pluggable arrival processes: Poisson, bursty ON-OFF,
//!   diurnal (sinusoidal rate), and template-mix drift, all deterministic
//!   under a seed.
//! * [`admission`] — overload control: shed arrivals when queues, flight
//!   counts, or fleet size cross a limit (or any custom hook).
//! * [`metrics`] — live accounting; emits
//!   [`MetricsSnapshot`](wisedb_core::MetricsSnapshot)s with p50/p95/p99
//!   latency, SLA-violation rate, $/hour, fleet gauges, and scheduler
//!   decision latency.
//! * [`service`] — [`WorkloadService`], the virtual-clock event loop
//!   wiring per-class `OnlineScheduler`s (incremental planning,
//!   LRU-bounded Reuse/Shift caches, parallel retraining, hot model
//!   swaps) to `LiveCluster` (incremental provisioning, execution,
//!   per-class billing). Multiple tenant SLA classes multiplex onto one
//!   shared fleet via [`WorkloadService::train_classes`]; a single-class
//!   service is bit-identical to the legacy single-goal one. Every solve
//!   the service triggers — (re)training and per-arrival oracle replans —
//!   runs whichever `wisedb_search::SearchStrategy` the embedded
//!   `OnlineConfig` selects (`OnlineConfig::with_strategy`): exact A* by
//!   default, or bounded-suboptimality beam/anytime replanning under the
//!   per-arrival expansion budget.
//! * [`shard`] — [`ShardedService`], the N-way tenant-partitioned form of
//!   the service: classes fan out to persistent shard worker threads that
//!   plan in parallel against an epoch-snapshot cluster view, and a serial
//!   tick-order merge keeps billing, completions, and metrics
//!   bit-identical to the unsharded service for any shard count. A greedy
//!   EMA-driven rebalancer moves hot classes between shards under
//!   [`ShardConfig`].
//!
//! ## Quickstart
//!
//! ```
//! use wisedb_runtime::prelude::*;
//! use wisedb_advisor::{ModelConfig, OnlineConfig};
//! use wisedb_core::{GoalKind, Millis, PerformanceGoal, VmType, WorkloadSpec};
//!
//! // Two templates on one VM type; max-latency SLA.
//! let spec = WorkloadSpec::single_vm(
//!     vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
//!     VmType::t2_medium(),
//! )
//! .unwrap();
//! let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
//!
//! // A small training budget keeps the doc test fast.
//! let config = RuntimeConfig {
//!     online: OnlineConfig {
//!         training: ModelConfig { num_samples: 40, sample_size: 5, ..ModelConfig::fast() },
//!         ..OnlineConfig::default()
//!     },
//!     ..RuntimeConfig::default()
//! };
//! let mut service = WorkloadService::train(spec, goal, config).unwrap();
//!
//! // Stream 20 Poisson arrivals through the loop and read the dashboard.
//! let mut process = PoissonProcess::per_second(0.05, TemplateMix::uniform(2));
//! let report = service.run_process(&mut process, 20).unwrap();
//! assert_eq!(report.last.completed, 20);
//! assert!(report.last.dollars_per_hour > 0.0);
//! assert!(report.last.latency.p95 >= report.last.latency.p50);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod arrivals;
pub mod metrics;
pub mod service;
pub mod shard;

pub use admission::{AdmissionPolicy, LoadStatus};
pub use arrivals::{
    generate_class_stream, generate_stream, merge_streams, ArrivalProcess, DiurnalProcess,
    DriftProcess, OnOffProcess, PoissonProcess, TemplateMix,
};
pub use metrics::MetricsCollector;
pub use service::{OfferOutcome, RuntimeConfig, StreamReport, WorkloadService};
pub use shard::{LoadSignal, ShardConfig, ShardLaneStats, ShardStats, ShardedService, TickGroup};

/// One-stop imports for driving the streaming runtime.
pub mod prelude {
    pub use crate::admission::{AdmissionPolicy, LoadStatus};
    pub use crate::arrivals::{
        generate_class_stream, generate_stream, merge_streams, ArrivalProcess, DiurnalProcess,
        DriftProcess, OnOffProcess, PoissonProcess, TemplateMix,
    };
    pub use crate::metrics::MetricsCollector;
    pub use crate::service::{OfferOutcome, RuntimeConfig, StreamReport, WorkloadService};
    pub use crate::shard::{LoadSignal, ShardConfig, ShardStats, ShardedService};
    pub use wisedb_core::{ClassMetrics, LatencySummary, MetricsSnapshot, SlaClass, TenantId};
}
