//! # WiSeDB
//!
//! A from-scratch Rust reproduction of **"WiSeDB: A Learning-based Workload
//! Management Advisor for Cloud Databases"** (Ryan Marcus and Olga
//! Papaemmanouil, VLDB 2016).
//!
//! WiSeDB answers three questions for an application running analytical
//! queries on an IaaS cloud, all at once and for a custom SLA:
//!
//! 1. **Provisioning** — how many VMs, of which types, to rent;
//! 2. **Placement** — which query runs on which VM;
//! 3. **Scheduling** — in what order each VM processes its queue;
//!
//! so that the total of VM start-up fees, rental time, and SLA penalties is
//! minimized. Instead of a hand-written heuristic per metric, WiSeDB *learns*
//! a decision-tree policy from optimal schedules of small sample workloads
//! and then applies it to arbitrarily large batch or online workloads.
//!
//! This facade crate re-exports the five subsystem crates:
//!
//! * [`core`](wisedb_core) — templates, VM types, schedules, SLAs, Eq. 1.
//! * [`search`](wisedb_search) — the scheduling graph and (adaptive) A*.
//! * [`learn`](wisedb_learn) — feature extraction and the decision-tree
//!   learner.
//! * [`advisor`](wisedb_advisor) — model generation, batch/online
//!   scheduling, strategy recommendation, and baseline heuristics.
//! * [`sim`](wisedb_sim) — the simulated IaaS cloud, workload generators,
//!   and the TPC-H-like catalog used by the experiments.
//!
//! ## Building and running
//!
//! The repo is a self-contained Cargo workspace — external dependencies
//! (`serde`, `serde_json`, `rand`, `proptest`, `criterion`) are vendored as
//! minimal offline stand-ins under `vendor/`, so a plain toolchain with no
//! network access suffices:
//!
//! ```text
//! cargo build --release          # all six crates + this facade
//! cargo test -q                  # tier-1: unit + integration + doc tests
//! cargo run --release --example quickstart
//! cargo run --release -p wisedb-bench --bin fig09   # paper figures
//! cargo bench -p wisedb-bench    # timing benches
//! ```
//!
//! See `tests/README.md` for the test-tier layout.
//!
//! ## Quickstart
//!
//! ```
//! use wisedb::prelude::*;
//!
//! // The paper's experimental setup: 10 TPC-H-like templates, t2.medium.
//! let spec = wisedb::sim::catalog::tpch_like(10);
//! let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
//!
//! // Train a decision model on optimal schedules of small sample workloads.
//! let config = ModelConfig::fast(); // small N for doc tests
//! let model = ModelGenerator::new(spec.clone(), goal.clone(), config)
//!     .train()
//!     .unwrap();
//!
//! // Schedule an incoming batch of 30 queries.
//! let workload = wisedb::sim::generator::uniform_workload(&spec, 30, 42);
//! let schedule = model.schedule_batch(&workload).unwrap();
//! let cost = total_cost(&spec, &goal, &schedule).unwrap();
//! assert!(schedule.num_vms() >= 1);
//! assert!(cost > Money::ZERO);
//! ```

pub use wisedb_advisor as advisor;
pub use wisedb_core as core;
pub use wisedb_learn as learn;
pub use wisedb_search as search;
pub use wisedb_sim as sim;

/// One-stop imports for applications using the advisor.
pub mod prelude {
    pub use wisedb_advisor::baselines::{self, Heuristic};
    pub use wisedb_advisor::model::{DecisionModel, ModelConfig, ModelGenerator};
    pub use wisedb_advisor::online::{OnlineConfig, OnlineScheduler};
    pub use wisedb_advisor::strategy::{RecommenderConfig, StrategyRecommender};
    pub use wisedb_core::{
        cost_breakdown, total_cost, CostBreakdown, GoalKind, Millis, Money, PenaltyRate,
        PerformanceGoal, Query, QueryId, QueryTemplate, Schedule, TemplateId, VmType, VmTypeId,
        Workload, WorkloadSpec,
    };
    pub use wisedb_search::astar::{AStarSearcher, OptimalSchedule};
}
