//! # WiSeDB
//!
//! A from-scratch Rust reproduction of **"WiSeDB: A Learning-based Workload
//! Management Advisor for Cloud Databases"** (Ryan Marcus and Olga
//! Papaemmanouil, VLDB 2016).
//!
//! WiSeDB answers three questions for an application running analytical
//! queries on an IaaS cloud, all at once and for a custom SLA:
//!
//! 1. **Provisioning** — how many VMs, of which types, to rent;
//! 2. **Placement** — which query runs on which VM;
//! 3. **Scheduling** — in what order each VM processes its queue;
//!
//! so that the total of VM start-up fees, rental time, and SLA penalties is
//! minimized. Instead of a hand-written heuristic per metric, WiSeDB *learns*
//! a decision-tree policy from optimal schedules of small sample workloads
//! and then applies it to arbitrarily large batch or online workloads.
//!
//! This facade crate re-exports the five subsystem crates:
//!
//! * [`core`](wisedb_core) — templates, VM types, schedules, SLAs, Eq. 1.
//! * [`search`](wisedb_search) — the scheduling graph and (adaptive) A*.
//! * [`learn`](wisedb_learn) — feature extraction and the decision-tree
//!   learner.
//! * [`advisor`](wisedb_advisor) — model generation (parallel per-sample
//!   solves), batch/online scheduling, strategy recommendation, and
//!   baseline heuristics.
//! * [`sim`](wisedb_sim) — the simulated IaaS cloud, workload generators,
//!   the TPC-H-like catalog used by the experiments, and the steppable
//!   live-cluster session.
//! * [`runtime`](wisedb_runtime) — the streaming online service: arrival
//!   processes, admission control, the virtual-clock event loop, and live
//!   SLA metrics.
//! * [`serve`](wisedb_serve) — the network-facing deployment: the runtime
//!   loop behind a versioned TCP wire protocol, with request batching,
//!   graceful shedding, and hot model swaps over the wire.
//! * [`obs`](wisedb_obs) — the observability layer: near-zero-overhead
//!   tracing spans and events threaded through every crate above, a
//!   metrics registry, and Chrome-trace / JSONL / Prometheus-style
//!   exporters (see ARCHITECTURE.md's span taxonomy).
//!
//! ## Building and running
//!
//! The repo is a self-contained Cargo workspace — external dependencies
//! (`serde`, `serde_json`, `rand`, `proptest`, `criterion`) are vendored as
//! minimal offline stand-ins under `vendor/`, so a plain toolchain with no
//! network access suffices:
//!
//! ```text
//! cargo build --release          # all seven crates + this facade
//! cargo test -q                  # tier-1: unit + integration + doc tests
//! cargo run --release --example quickstart
//! cargo run --release -p wisedb-bench --bin fig09      # paper figures
//! cargo run --release -p wisedb-bench --bin streaming  # streaming runtime
//! cargo bench -p wisedb-bench    # timing benches (incl. streaming)
//! ```
//!
//! See `ARCHITECTURE.md` for the crate map and data flow, and
//! `tests/README.md` for the test-tier layout.
//!
//! ## Quickstart
//!
//! ```
//! use wisedb::prelude::*;
//!
//! // The paper's experimental setup: 10 TPC-H-like templates, t2.medium.
//! let spec = wisedb::sim::catalog::tpch_like(10);
//! let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
//!
//! // Train a decision model on optimal schedules of small sample workloads.
//! let config = ModelConfig::fast(); // small N for doc tests
//! let model = ModelGenerator::new(spec.clone(), goal.clone(), config)
//!     .train()
//!     .unwrap();
//!
//! // Schedule an incoming batch of 30 queries.
//! let workload = wisedb::sim::generator::uniform_workload(&spec, 30, 42);
//! let schedule = model.schedule_batch(&workload).unwrap();
//! let cost = total_cost(&spec, &goal, &schedule).unwrap();
//! assert!(schedule.num_vms() >= 1);
//! assert!(cost > Money::ZERO);
//! ```
//!
//! ## Streaming runtime
//!
//! The batch quickstart schedules a workload that is fully known up front.
//! The [`runtime`](wisedb_runtime) crate instead *streams*: arrivals from a
//! pluggable process (Poisson, bursty ON-OFF, diurnal, template-drift) are
//! pushed through the §6.3 rescheduling loop against a live simulated
//! cluster, with admission control and live SLA metrics:
//!
//! ```
//! use wisedb::prelude::*;
//!
//! let spec = wisedb::sim::catalog::tpch_like(4);
//! let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
//! let config = RuntimeConfig {
//!     online: OnlineConfig {
//!         training: ModelConfig { num_samples: 40, sample_size: 5, ..ModelConfig::fast() },
//!         ..OnlineConfig::default()
//!     },
//!     ..RuntimeConfig::default()
//! };
//! let mut service = WorkloadService::train(spec, goal, config).unwrap();
//!
//! // 20 Poisson arrivals at one query per 100 s of virtual time.
//! let mut process = PoissonProcess::per_second(0.01, TemplateMix::uniform(4));
//! let report = service.run_process(&mut process, 20).unwrap();
//! assert_eq!(report.last.completed, 20);
//! // The dashboard numbers: p95 latency, violation rate, spend rate.
//! assert!(report.last.latency.p95 >= report.last.latency.p50);
//! assert!(report.last.violation_rate <= 1.0);
//! assert!(report.last.dollars_per_hour > 0.0);
//! ```

pub use wisedb_advisor as advisor;
pub use wisedb_core as core;
pub use wisedb_learn as learn;
pub use wisedb_obs as obs;
pub use wisedb_runtime as runtime;
pub use wisedb_search as search;
pub use wisedb_serve as serve;
pub use wisedb_sim as sim;

/// One-stop imports for applications using the advisor.
pub mod prelude {
    pub use wisedb_advisor::baselines::{self, Heuristic};
    pub use wisedb_advisor::model::{DecisionModel, ModelConfig, ModelGenerator};
    pub use wisedb_advisor::multi::MultiScheduler;
    pub use wisedb_advisor::online::{OnlineConfig, OnlineScheduler};
    pub use wisedb_advisor::strategy::{RecommenderConfig, StrategyRecommender};
    pub use wisedb_core::{
        cost_breakdown, total_cost, ClassMetrics, CostBreakdown, GoalHandle, GoalKind,
        LatencySummary, MetricsSnapshot, Millis, Money, PenaltyRate, PerformanceGoal, Query,
        QueryId, QueryTemplate, Schedule, SlaClass, SpecHandle, TemplateId, TenantId, VmType,
        VmTypeId, Workload, WorkloadSpec,
    };
    pub use wisedb_runtime::{
        generate_class_stream, merge_streams, AdmissionPolicy, ArrivalProcess, DiurnalProcess,
        DriftProcess, OnOffProcess, PoissonProcess, RuntimeConfig, ShardConfig, ShardedService,
        StreamReport, TemplateMix, WorkloadService,
    };
    pub use wisedb_search::astar::{AStarSearcher, OptimalSchedule};
    pub use wisedb_search::strategy::{SearchConfig, SearchStrategy, Solver};
    pub use wisedb_serve::{Client, ServeConfig, Server, ServerHandle};
    pub use wisedb_sim::{LiveCluster, LiveOptions};
}
