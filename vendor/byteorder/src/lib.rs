//! Vendored, offline stand-in for the `byteorder` crate (1.x API surface).
//!
//! Provides exactly what this workspace uses for its wire protocol:
//! [`BigEndian`] / [`LittleEndian`] byte orders and the [`ReadBytesExt`] /
//! [`WriteBytesExt`] extension traits over `std::io` streams for `u8` /
//! `u16` / `u32` / `u64`. Swappable for the real crate: call sites compile
//! unchanged against crates.io `byteorder`.

use std::io;

/// An endianness: how multi-byte integers lay out on the wire.
pub trait ByteOrder {
    /// Reads a `u16` from the first two bytes of `buf`.
    fn read_u16(buf: &[u8]) -> u16;
    /// Reads a `u32` from the first four bytes of `buf`.
    fn read_u32(buf: &[u8]) -> u32;
    /// Reads a `u64` from the first eight bytes of `buf`.
    fn read_u64(buf: &[u8]) -> u64;
    /// Writes `n` into the first two bytes of `buf`.
    fn write_u16(buf: &mut [u8], n: u16);
    /// Writes `n` into the first four bytes of `buf`.
    fn write_u32(buf: &mut [u8], n: u32);
    /// Writes `n` into the first eight bytes of `buf`.
    fn write_u64(buf: &mut [u8], n: u64);
}

/// Network byte order (most significant byte first).
#[derive(Debug, Clone, Copy)]
pub enum BigEndian {}

/// Least significant byte first.
#[derive(Debug, Clone, Copy)]
pub enum LittleEndian {}

/// `BigEndian` under byteorder's network-order alias.
pub type NetworkEndian = BigEndian;

macro_rules! order_impl {
    ($order:ty, $from:ident, $to:ident) => {
        impl ByteOrder for $order {
            fn read_u16(buf: &[u8]) -> u16 {
                u16::$from(buf[..2].try_into().expect("two bytes"))
            }
            fn read_u32(buf: &[u8]) -> u32 {
                u32::$from(buf[..4].try_into().expect("four bytes"))
            }
            fn read_u64(buf: &[u8]) -> u64 {
                u64::$from(buf[..8].try_into().expect("eight bytes"))
            }
            fn write_u16(buf: &mut [u8], n: u16) {
                buf[..2].copy_from_slice(&n.$to());
            }
            fn write_u32(buf: &mut [u8], n: u32) {
                buf[..4].copy_from_slice(&n.$to());
            }
            fn write_u64(buf: &mut [u8], n: u64) {
                buf[..8].copy_from_slice(&n.$to());
            }
        }
    };
}

order_impl!(BigEndian, from_be_bytes, to_be_bytes);
order_impl!(LittleEndian, from_le_bytes, to_le_bytes);

/// Reads fixed-width integers off any `io::Read`.
pub trait ReadBytesExt: io::Read {
    /// Reads one byte.
    fn read_u8(&mut self) -> io::Result<u8> {
        let mut buf = [0u8; 1];
        self.read_exact(&mut buf)?;
        Ok(buf[0])
    }

    /// Reads a `u16` in byte order `B`.
    fn read_u16<B: ByteOrder>(&mut self) -> io::Result<u16> {
        let mut buf = [0u8; 2];
        self.read_exact(&mut buf)?;
        Ok(B::read_u16(&buf))
    }

    /// Reads a `u32` in byte order `B`.
    fn read_u32<B: ByteOrder>(&mut self) -> io::Result<u32> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf)?;
        Ok(B::read_u32(&buf))
    }

    /// Reads a `u64` in byte order `B`.
    fn read_u64<B: ByteOrder>(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(B::read_u64(&buf))
    }
}

impl<R: io::Read + ?Sized> ReadBytesExt for R {}

/// Writes fixed-width integers onto any `io::Write`.
pub trait WriteBytesExt: io::Write {
    /// Writes one byte.
    fn write_u8(&mut self, n: u8) -> io::Result<()> {
        self.write_all(&[n])
    }

    /// Writes a `u16` in byte order `B`.
    fn write_u16<B: ByteOrder>(&mut self, n: u16) -> io::Result<()> {
        let mut buf = [0u8; 2];
        B::write_u16(&mut buf, n);
        self.write_all(&buf)
    }

    /// Writes a `u32` in byte order `B`.
    fn write_u32<B: ByteOrder>(&mut self, n: u32) -> io::Result<()> {
        let mut buf = [0u8; 4];
        B::write_u32(&mut buf, n);
        self.write_all(&buf)
    }

    /// Writes a `u64` in byte order `B`.
    fn write_u64<B: ByteOrder>(&mut self, n: u64) -> io::Result<()> {
        let mut buf = [0u8; 8];
        B::write_u64(&mut buf, n);
        self.write_all(&buf)
    }
}

impl<W: io::Write + ?Sized> WriteBytesExt for W {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_both_orders() {
        let mut buf = Vec::new();
        buf.write_u8(0xAB).unwrap();
        buf.write_u16::<BigEndian>(0x1234).unwrap();
        buf.write_u32::<BigEndian>(0xDEAD_BEEF).unwrap();
        buf.write_u64::<LittleEndian>(0x0102_0304_0506_0708)
            .unwrap();

        let mut r = &buf[..];
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16::<BigEndian>().unwrap(), 0x1234);
        assert_eq!(r.read_u32::<BigEndian>().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64::<LittleEndian>().unwrap(), 0x0102_0304_0506_0708);
        assert!(r.is_empty());
    }

    #[test]
    fn big_endian_wire_layout_is_network_order() {
        let mut buf = Vec::new();
        buf.write_u32::<BigEndian>(0x0102_0304).unwrap();
        assert_eq!(buf, [0x01, 0x02, 0x03, 0x04]);
        let mut buf = Vec::new();
        buf.write_u16::<NetworkEndian>(0x0102).unwrap();
        assert_eq!(buf, [0x01, 0x02]);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let short = [0x01u8, 0x02];
        let mut r = &short[..];
        assert_eq!(
            r.read_u32::<BigEndian>().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
