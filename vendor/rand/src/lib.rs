//! Vendored, offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides exactly what this workspace uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait with `gen_range` / `gen_bool`, and
//! [`distributions::Distribution`]. Deterministic for a given seed, which is
//! what the experiments and tests rely on; it makes no cryptographic claims.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A sample from `dist`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 uniform bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample; panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let x = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; stay half-open.
        if x >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            x
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_single(rng) as f32
    }
}

/// Distribution traits (`rand::distributions`).
pub mod distributions {
    use crate::Rng;

    /// Types that produce samples of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample from the distribution.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Concrete RNGs (`rand::rngs`).
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++, state seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(0..7);
            assert!(x < 7);
            let y: u32 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let n: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }
}
