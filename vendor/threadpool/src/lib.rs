//! Vendored, offline stand-in for the `threadpool` crate (1.x API surface).
//!
//! A fixed-size pool of worker threads draining a shared job queue.
//! Provides exactly what this workspace uses: [`ThreadPool::new`],
//! [`ThreadPool::execute`], [`ThreadPool::join`], and a [`Drop`] that
//! closes the queue and joins every worker. Swappable for the real
//! crate: call sites compile unchanged against crates.io `threadpool`.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{Builder, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Jobs in flight or queued, plus a condvar so `join` can wait for zero.
struct Pending {
    count: Mutex<usize>,
    idle: Condvar,
}

impl Pending {
    fn enter(&self) {
        *self.count.lock().expect("pending lock poisoned") += 1;
    }

    fn exit(&self) {
        let mut count = self.count.lock().expect("pending lock poisoned");
        *count -= 1;
        if *count == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut count = self.count.lock().expect("pending lock poisoned");
        while *count > 0 {
            count = self.idle.wait(count).expect("pending lock poisoned");
        }
    }
}

/// A fixed-size pool of worker threads executing queued closures.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    pending: Arc<Pending>,
}

impl ThreadPool {
    /// Spawns a pool with `num_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero or the OS refuses to spawn a
    /// thread.
    pub fn new(num_threads: usize) -> Self {
        assert!(
            num_threads > 0,
            "ThreadPool::new requires at least one thread"
        );
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let pending = Arc::new(Pending {
            count: Mutex::new(0),
            idle: Condvar::new(),
        });
        let workers = (0..num_threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let pending = Arc::clone(&pending);
                Builder::new()
                    .name(format!("threadpool-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &pending))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            pending,
        }
    }

    /// Queues `job` for execution on some worker thread.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.pending.enter();
        let sent = self
            .sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job));
        if sent.is_err() {
            // All workers are gone; the job will never run.
            self.pending.exit();
        }
    }

    /// Blocks until every queued and in-flight job has finished.
    ///
    /// Unlike `Drop`, the pool stays usable afterwards.
    pub fn join(&self) {
        self.pending.wait_idle();
    }

    /// The number of worker threads in the pool.
    pub fn max_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv() fail once the
        // queue drains, so each exits its loop; then join them all.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, pending: &Pending) {
    loop {
        // Hold the lock only while receiving so workers pull jobs
        // concurrently with each other's execution.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                job();
                pending.exit();
            }
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_queued_job() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn join_leaves_the_pool_usable() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for round in 0..3 {
            for _ in 0..10 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.join();
            assert_eq!(hits.load(Ordering::SeqCst), (round + 1) * 10);
        }
    }

    #[test]
    fn drop_waits_for_in_flight_jobs() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..20 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn max_count_reports_worker_threads() {
        assert_eq!(ThreadPool::new(3).max_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = ThreadPool::new(0);
    }
}
