//! Vendored, offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal serde-compatible surface: the
//! [`Serialize`] / [`Deserialize`] traits, the derive macros (re-exported
//! from `serde_derive`), and a JSON-like [`Value`] data model that
//! `serde_json` (also vendored) prints and parses.
//!
//! Supported derive attributes: `#[serde(transparent)]` on newtype structs
//! and `#[serde(skip)]` / `#[serde(default)]` on named fields. Everything
//! else the real serde supports is intentionally absent.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
///
/// This collapses serde's 29-type data model to the eight shapes JSON can
/// express, which is all this workspace needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (accepts all three number shapes).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// (De)serialization error: a message describing what went wrong.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("integer {u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected single-char string, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
                let expected = [$($i),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; HashMap iteration order is random.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
