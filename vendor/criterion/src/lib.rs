//! Vendored, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the group/bencher API surface this workspace's benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_with_input`,
//! `iter`, `iter_batched`, `criterion_group!` / `criterion_main!`) with a
//! simple mean-of-samples timer that prints one line per benchmark, plus
//! the programmatic [`measure`] / [`measure_batched`] helpers the
//! `wisedb-bench --bin regress` harness builds its JSON reports from. No
//! statistics, plots, or built-in baselines — those need the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, None, f);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units-per-iteration annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps alive at once (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Accepts either a `BenchmarkId` or a plain name.
pub struct BenchmarkIdOrName(String);

impl From<BenchmarkId> for BenchmarkIdOrName {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrName(id.id)
    }
}

impl From<&str> for BenchmarkIdOrName {
    fn from(s: &str) -> Self {
        BenchmarkIdOrName(s.to_owned())
    }
}

impl From<String> for BenchmarkIdOrName {
    fn from(s: String) -> Self {
        BenchmarkIdOrName(s)
    }
}

/// Passed to benchmark closures; records what one sample took.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh `setup` output each iteration; only the
    /// routine is on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Times `routine` programmatically: one warm-up call, then `samples`
/// timed calls, returning the **median** sample duration (robust to the
/// odd scheduler hiccup, unlike the printed mean). This is the primitive
/// the `regress` harness records into its JSON reports.
pub fn measure<O, F: FnMut() -> O>(samples: usize, mut routine: F) -> Duration {
    black_box(routine()); // warm-up
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// [`measure`] with a fresh `setup` output per sample; only `routine` is
/// on the clock (the programmatic analogue of [`Bencher::iter_batched`]).
pub fn measure_batched<I, O, S, R>(samples: usize, mut setup: S, mut routine: R) -> Duration
where
    S: FnMut() -> I,
    R: FnMut(I) -> O,
{
    black_box(routine(setup())); // warm-up
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up pass, then `sample_size` timed samples of one iteration each.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut bencher);
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        total += bencher.elapsed;
    }
    let mean = total / sample_size as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label}: {mean:?}/iter{rate}");
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            let _ = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_a_nonzero_median() {
        let mut calls = 0u32;
        let d = measure(5, || {
            calls += 1;
            std::hint::black_box((0..500).sum::<u64>())
        });
        // One warm-up + five samples.
        assert_eq!(calls, 6);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn measure_batched_times_only_the_routine() {
        let mut setups = 0u32;
        let mut runs = 0u32;
        let d = measure_batched(
            3,
            || {
                setups += 1;
                vec![1u64; 100]
            },
            |v| {
                runs += 1;
                v.iter().sum::<u64>()
            },
        );
        assert_eq!(setups, 4); // warm-up + 3 samples
        assert_eq!(runs, 4);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn measure_clamps_zero_samples() {
        // samples = 0 still takes one sample instead of panicking.
        let d = measure(0, || std::hint::black_box(1 + 1));
        let _ = d;
    }
}
