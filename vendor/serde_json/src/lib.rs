//! Vendored, offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text against the vendored `serde` crate's
//! [`serde::Value`] data model. Covers `to_string` / `to_string_pretty` /
//! `from_str` (all this workspace uses); no streaming, no `json!`.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string (two-space indent, one
/// array element / object field per line) — the format committed baseline
/// files use so diffs stay reviewable.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value> {
    parse(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity; real serde_json emits `null`
                // for non-finite floats, and callers that need to round-trip
                // them (e.g. unset suboptimality bounds) map null back.
                out.push_str("null");
            } else {
                // Rust's shortest round-trip formatting; integral floats
                // print without a fraction and re-parse as integers, which
                // the numeric coercions in `serde::Value` accept.
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) -> Result<()> {
    const INDENT: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_value_pretty(out, item, depth + 1)?;
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1)?;
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        // Scalars and empty containers print compactly.
        other => write_value(out, other)?,
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.consume_lit("null", Value::Null),
            b't' => self.consume_lit("true", Value::Bool(true)),
            b'f' => self.consume_lit("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at offset {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at offset {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        c => return Err(Error::new(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u64>() {
                    if u <= i64::MAX as u64 + 1 {
                        return Ok(Value::Int((u as i128 * -1) as i64));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for json in ["null", "true", "false", "0", "42", "-7", "3.25", "\"hi\""] {
            let v = parse(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v).unwrap();
            assert_eq!(out, json);
        }
    }

    #[test]
    fn round_trip_nested() {
        let json = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#;
        let v = parse(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v).unwrap();
        assert_eq!(out, json);
    }

    #[test]
    fn float_round_trips_exactly() {
        let f = 0.1 + 0.2;
        let s = to_string(&f).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // Real serde_json's behaviour: NaN/±∞ become `null`, producing
        // valid JSON instead of an error (or worse, `inf` tokens).
        for f in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(to_string(&f).unwrap(), "null");
            assert_eq!(to_string_pretty(&f).unwrap(), "null");
        }
        let v = Value::Array(vec![Value::Float(f64::INFINITY), Value::Float(1.5)]);
        let mut out = String::new();
        write_value(&mut out, &v).unwrap();
        assert_eq!(out, "[null,1.5]");
    }

    #[test]
    fn pretty_printing_indents_and_round_trips() {
        let json = r#"{"a":[1,2],"b":{"c":"x"},"d":[],"e":{}}"#;
        let v = parse(json).unwrap();
        let mut pretty = String::new();
        write_value_pretty(&mut pretty, &v, 0).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": \"x\"\n  },\n  \"d\": [],\n  \"e\": {}\n}"
        );
        // Pretty output re-parses to the same value.
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn to_string_pretty_on_scalars_is_compact() {
        assert_eq!(to_string_pretty(&42u64).unwrap(), "42");
        assert_eq!(to_string_pretty("hi").unwrap(), "\"hi\"");
    }
}
