//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait (`prop_map`, `prop_filter`, `prop_flat_map`, `boxed`),
//! range and tuple strategies, [`Just`], [`collection::vec`],
//! [`prop_oneof!`], and the [`proptest!`] / `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Failing cases are **greedily shrunk**: integer and float ranges shrink
//! toward their lower bound, `collection::vec` shrinks by halving, removing
//! single elements, and shrinking elements in place, tuples shrink one
//! component at a time, and `prop_filter` shrinks through to its inner
//! strategy (keeping only candidates that satisfy the predicate). Mapped
//! and flat-mapped strategies do not shrink (the mapping cannot be
//! inverted), so properties built from them report the raw counterexample.
//! Shrinking effort is capped by [`ProptestConfig::max_shrink_iters`].
//!
//! Differences from the real crate: a fixed deterministic seed (override
//! with the `PROPTEST_SEED` environment variable) and the simpler greedy
//! shrinking described above.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; mirrors the real crate's field-struct-update idiom
/// (`ProptestConfig { cases: 20, ..ProptestConfig::default() }`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Cap on strategy-level rejections per case before giving up.
    pub max_local_rejects: u32,
    /// Cap on whole-case rejections (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
    /// Cap on candidate evaluations while shrinking a failing case.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
            max_shrink_iters: 4_096,
        }
    }
}

/// Why a value or test case was rejected (e.g. a failed `prop_assume!`).
#[derive(Debug, Clone)]
pub struct Reject(pub String);

impl From<&str> for Reject {
    fn from(s: &str) -> Reject {
        Reject(s.to_owned())
    }
}

impl From<String> for Reject {
    fn from(s: String) -> Reject {
        Reject(s)
    }
}

/// The per-property RNG and bookkeeping handle strategies draw from.
pub struct TestRunner {
    rng: StdRng,
    max_local_rejects: u32,
}

impl TestRunner {
    /// Builds a runner. Deterministic unless `PROPTEST_SEED` is set.
    pub fn new(config: &ProptestConfig) -> TestRunner {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            max_local_rejects: config.max_local_rejects.max(1),
        }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// How many strategy-level rejections (e.g. `prop_filter` misses) a
    /// single draw may absorb before giving up.
    pub fn max_local_rejects(&self) -> u32 {
        self.max_local_rejects
    }
}

/// A generator of values of type `Value`.
///
/// Object-safe core (`new_value`) plus `Sized` combinators, so
/// `Box<dyn Strategy<Value = T>>` works for [`prop_oneof!`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value, or rejects (caller retries).
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject>;

    /// Candidate simplifications of `value`, most aggressive first.
    /// Strategies that cannot shrink return an empty list (the default).
    /// Every candidate must itself be a value the strategy could produce.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; rejects after repeated failures.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject> {
        (**self).new_value(runner)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject> {
        (**self).new_value(runner)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Thread ids currently shrinking a failing case (module-level so every
/// monomorphization of [`run_property`] shares it).
static SHRINKING_THREADS: std::sync::Mutex<Vec<std::thread::ThreadId>> =
    std::sync::Mutex::new(Vec::new());

/// One-time installation of the filtering panic hook.
static HOOK_INSTALL: std::sync::Once = std::sync::Once::new();

/// Mutes panic output from the *current thread* while `f` runs, leaving
/// every other thread's panics (unrelated concurrently failing tests)
/// reported normally. Installs — once, process-wide — a hook that forwards
/// to the previously installed hook unless the panicking thread is
/// mid-shrink; the wrapper stays installed afterwards, which is harmless.
fn with_thread_panics_muted<R>(f: impl FnOnce() -> R) -> R {
    HOOK_INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let id = std::thread::current().id();
            let muted = SHRINKING_THREADS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&id);
            if !muted {
                previous(info);
            }
        }));
    });
    let id = std::thread::current().id();
    SHRINKING_THREADS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(id);
    // Un-mute on the way out even if `f` itself panics.
    struct Unmute(std::thread::ThreadId);
    impl Drop for Unmute {
        fn drop(&mut self) {
            let mut threads = SHRINKING_THREADS.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = threads.iter().position(|t| *t == self.0) {
                threads.swap_remove(pos);
            }
        }
    }
    let _unmute = Unmute(id);
    f()
}

/// The [`proptest!`] driver: draws cases from `strategy` until `config.cases`
/// pass, rejecting on `Err` (a failed `prop_assume!`). A panicking case is
/// greedily shrunk (with the panic hook muted so candidate evaluations stay
/// silent), the raw and minimal counterexamples are reported, and the
/// minimal case is re-run uncaught so its assertion message surfaces.
pub fn run_property<S>(
    config: &ProptestConfig,
    strategy: &S,
    name: &str,
    run_case: impl Fn(&S::Value) -> Result<(), Reject>,
) where
    S: Strategy,
    S::Value: std::fmt::Debug,
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    let mut runner = TestRunner::new(config);
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    while accepted < config.cases {
        if rejected > config.max_global_rejects as u64 {
            panic!(
                "proptest: too many global rejects ({accepted} of {} cases ran)",
                config.cases
            );
        }
        let vals = match strategy.new_value(&mut runner) {
            Ok(v) => v,
            Err(_) => {
                rejected += 1;
                continue;
            }
        };
        match catch_unwind(AssertUnwindSafe(|| run_case(&vals))) {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(_)) => rejected += 1,
            Err(payload) => {
                let raw = format!("{vals:?}");
                // Mute this thread's panics while candidate evaluations
                // run; other threads' (unrelated tests') panics still
                // report normally.
                let minimal = with_thread_panics_muted(|| {
                    greedy_shrink(strategy, vals, config.max_shrink_iters, |c| {
                        catch_unwind(AssertUnwindSafe(|| run_case(c))).is_err()
                    })
                });
                eprintln!(
                    "proptest: property `{name}` failed (case {} of {})\n  \
                     raw counterexample: {raw}\n  \
                     minimal counterexample: {minimal:?}",
                    accepted + 1,
                    config.cases
                );
                match catch_unwind(AssertUnwindSafe(|| run_case(&minimal))) {
                    Err(p) => resume_unwind(p),
                    // The minimal case passed on re-run (a flaky property);
                    // fall back to the original failure.
                    Ok(_) => resume_unwind(payload),
                }
            }
        }
    }
}

/// Greedily minimizes a failing input: repeatedly replaces the current
/// counterexample with its first shrink candidate that still fails, until
/// no candidate fails or `max_iters` candidate evaluations are spent.
/// Returns the (locally) minimal failing value.
pub fn greedy_shrink<S: Strategy + ?Sized>(
    strategy: &S,
    initial: S::Value,
    max_iters: u32,
    mut still_fails: impl FnMut(&S::Value) -> bool,
) -> S::Value {
    let mut current = initial;
    let mut iters = 0u32;
    'outer: while iters < max_iters {
        for candidate in strategy.shrink(&current) {
            iters += 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
            if iters >= max_iters {
                break 'outer;
            }
        }
        // No candidate reproduces the failure: local minimum reached.
        break;
    }
    current
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> Result<O, Reject> {
        self.inner.new_value(runner).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S::Value, Reject> {
        for _ in 0..runner.max_local_rejects() {
            let v = self.inner.new_value(runner)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(format!(
            "prop_filter exhausted retries: {}",
            self.whence
        )))
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|c| (self.pred)(c))
            .collect()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S2::Value, Reject> {
        let seed = self.inner.new_value(runner)?;
        (self.f)(seed).new_value(runner)
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`] backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> Result<T, Reject> {
        let idx = runner.rng().gen_range(0..self.arms.len());
        self.arms[idx].new_value(runner)
    }
}

/// Shrink candidates of an integer toward a lower bound: the bound itself,
/// the midpoint, and the predecessor (deduplicated, most aggressive first).
fn shrink_int_toward<T>(low: T, v: T) -> Vec<T>
where
    T: Copy + PartialOrd + PartialEq + num_ops::IntOps,
{
    if !(v > low) {
        return Vec::new();
    }
    let mut out = vec![low];
    let mid = num_ops::IntOps::midpoint(low, v);
    if mid != low && mid != v {
        out.push(mid);
    }
    let dec = num_ops::IntOps::pred(v);
    if dec != low && dec != mid {
        out.push(dec);
    }
    out
}

/// The tiny integer-arithmetic surface [`shrink_int_toward`] needs,
/// implemented for every range-strategy element type.
mod num_ops {
    pub trait IntOps: Sized {
        fn midpoint(low: Self, v: Self) -> Self;
        fn pred(v: Self) -> Self;
    }
    macro_rules! impl_int_ops {
        ($($t:ty),*) => {$(
            impl IntOps for $t {
                fn midpoint(low: $t, v: $t) -> $t {
                    low + (v - low) / 2
                }
                fn pred(v: $t) -> $t {
                    v - 1
                }
            }
        )*};
    }
    impl_int_ops!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Reject> {
                Ok(runner.rng().gen_range(self.clone()))
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(self.start, *value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Reject> {
                Ok(runner.rng().gen_range(self.clone()))
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*self.start(), *value)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> Result<f64, Reject> {
        Ok(runner.rng().gen_range(self.clone()))
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let low = self.start;
        if !(*value > low) {
            return Vec::new();
        }
        let mut out = vec![low];
        let mid = low + (*value - low) / 2.0;
        if mid > low && mid < *value {
            out.push(mid);
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject> {
                Ok(($(self.$i.new_value(runner)?,)+))
            }
            /// Shrinks one component at a time, the others held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Reject, Strategy, TestRunner};
    use rand::Rng;

    /// Inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Result<Vec<S::Value>, Reject> {
            let len = runner.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.new_value(runner)).collect()
        }
        /// Shrinks by halving, by removing single elements (respecting the
        /// minimum size), and by shrinking elements in place.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            if value.len() > self.size.min {
                let half = (value.len() / 2).max(self.size.min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            for i in 0..value.len() {
                for candidate in self.elem.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        greedy_shrink, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Reject, Strategy, TestRunner, Union,
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Rejects the current case unless `cond` holds (retried, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Reject::from(stringify!($cond)));
        }
    };
}

/// Asserts within a property (fails the test; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = ( $($strat,)+ );
                $crate::run_property(
                    &__config,
                    &__strategy,
                    stringify!($name),
                    |__vals| {
                        // One case per cloned draw: Ok(()) passes, Err
                        // rejects (`prop_assume!`), panics propagate.
                        let ( $($pat,)+ ) = ::std::clone::Clone::clone(__vals);
                        { $body }
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::{collection, ProptestConfig, Strategy, TestRunner};

    #[test]
    fn filter_respects_local_reject_cap() {
        let cfg = ProptestConfig {
            max_local_rejects: 3,
            ..ProptestConfig::default()
        };
        let mut runner = TestRunner::new(&cfg);
        let strat = (0u32..10).prop_filter("impossible", |_| false);
        assert!(strat.new_value(&mut runner).is_err());
    }

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut runner = TestRunner::new(&ProptestConfig::default());
        let strat = collection::vec(0u32..5, 2..=4);
        for _ in 0..100 {
            let v = strat.new_value(&mut runner).unwrap();
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut runner = TestRunner::new(&ProptestConfig::default());
        let strat = crate::prop_oneof![0u32..1, 10u32..11];
        let mut seen = [false, false];
        for _ in 0..200 {
            match strat.new_value(&mut runner).unwrap() {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected draw {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    // ----------------------------------------------------------------
    // Greedy shrinking
    // ----------------------------------------------------------------

    #[test]
    fn int_shrink_reaches_the_minimal_failing_value() {
        // "Fails" iff v >= 7: bisection must land exactly on 7.
        let strat = 0u32..100;
        assert_eq!(crate::greedy_shrink(&strat, 63, 10_000, |v| *v >= 7), 7);
        assert_eq!(crate::greedy_shrink(&strat, 99, 10_000, |v| *v >= 7), 7);
        // Already minimal: nothing to do.
        assert_eq!(crate::greedy_shrink(&strat, 7, 10_000, |v| *v >= 7), 7);
    }

    #[test]
    fn int_shrink_candidates_stay_in_range_and_decrease() {
        let strat = 5u32..100;
        for v in [6u32, 50, 99] {
            for c in Strategy::shrink(&strat, &v) {
                assert!((5..100).contains(&c) && c < v, "bad candidate {c} of {v}");
            }
        }
        assert!(Strategy::shrink(&strat, &5).is_empty());
        // Inclusive ranges shrink toward their own lower bound.
        let incl = 3u32..=9;
        assert!(Strategy::shrink(&incl, &9).contains(&3));
        // Signed ranges shrink toward a negative bound.
        let signed = -10i32..10;
        assert!(Strategy::shrink(&signed, &5).contains(&-10));
    }

    #[test]
    fn f64_shrink_halves_toward_the_lower_bound() {
        let strat = 0.0f64..100.0;
        let minimal = crate::greedy_shrink(&strat, 80.0, 10_000, |v| *v >= 10.0);
        assert!((10.0..10.5).contains(&minimal), "minimal {minimal}");
        assert!(Strategy::shrink(&strat, &0.0).is_empty());
    }

    #[test]
    fn vec_shrink_minimizes_length_and_elements() {
        // "Fails" iff any element >= 5: the minimal case is exactly [5].
        let strat = collection::vec(0u32..10, 0..=8);
        let minimal = crate::greedy_shrink(&strat, vec![9, 1, 2, 8, 3], 100_000, |v| {
            v.iter().any(|&x| x >= 5)
        });
        assert_eq!(minimal, vec![5]);
    }

    #[test]
    fn vec_shrink_respects_the_minimum_size() {
        let strat = collection::vec(0u32..10, 2..=6);
        for c in Strategy::shrink(&strat, &vec![7, 7, 7]) {
            assert!(c.len() >= 2, "candidate below minimum size: {c:?}");
        }
        let minimal = crate::greedy_shrink(&strat, vec![7, 7, 7, 7], 100_000, |v| v.len() >= 2);
        assert_eq!(minimal, vec![0, 0]);
    }

    #[test]
    fn tuple_shrink_moves_one_component_at_a_time() {
        let strat = (0u32..100, 0u32..100);
        for (a, b) in Strategy::shrink(&strat, &(9, 9)) {
            assert!((a == 9) != (b == 9), "both components changed: ({a},{b})");
        }
        let minimal = crate::greedy_shrink(&strat, (9, 9), 10_000, |&(a, b)| a + b >= 10);
        assert_eq!(minimal.0 + minimal.1, 10, "on the failure boundary");
    }

    #[test]
    fn filter_shrink_keeps_the_predicate() {
        let strat = (0u32..100).prop_filter("odd", |v| v % 2 == 1);
        for c in Strategy::shrink(&strat, &63) {
            assert_eq!(c % 2, 1, "even candidate {c} escaped the filter");
        }
        // Fails iff v >= 7; the smallest odd failing value is 7.
        assert_eq!(crate::greedy_shrink(&strat, 63, 10_000, |v| *v >= 7), 7);
    }

    #[test]
    fn shrink_iteration_budget_is_respected() {
        let strat = 0u64..u64::MAX / 2;
        let mut evals = 0u32;
        let budget = 5;
        crate::greedy_shrink(&strat, u64::MAX / 2 - 1, budget, |_| {
            evals += 1;
            true
        });
        assert!(
            evals <= budget,
            "{evals} evaluations for a budget of {budget}"
        );
    }

    // A deliberately failing property (no #[test]: invoked manually below
    // to observe the shrinking behaviour end to end).
    crate::proptest! {
        fn fails_from_seven_up(v in 0u32..1000) {
            crate::prop_assert!(v < 7, "boom at {}", v);
        }
    }

    #[test]
    fn macro_shrinks_to_the_minimal_counterexample_before_failing() {
        // Mute the default hook so the intentional failure stays quiet.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = std::panic::catch_unwind(fails_from_seven_up);
        std::panic::set_hook(prev);
        let payload = outcome.expect_err("the property must fail");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        // The final panic comes from re-running the *minimal* case.
        assert!(
            message.contains("boom at 7"),
            "expected the minimal counterexample 7, got: {message}"
        );
    }
}
