//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait (`prop_map`, `prop_filter`, `prop_flat_map`, `boxed`),
//! range and tuple strategies, [`Just`], [`collection::vec`],
//! [`prop_oneof!`], and the [`proptest!`] / `prop_assert*` / `prop_assume!`
//! macros. Differences from the real crate: no shrinking (failures report
//! the raw counterexample) and a fixed deterministic seed (override with the
//! `PROPTEST_SEED` environment variable).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; mirrors the real crate's field-struct-update idiom
/// (`ProptestConfig { cases: 20, ..ProptestConfig::default() }`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Cap on strategy-level rejections per case before giving up.
    pub max_local_rejects: u32,
    /// Cap on whole-case rejections (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
            max_shrink_iters: 0,
        }
    }
}

/// Why a value or test case was rejected (e.g. a failed `prop_assume!`).
#[derive(Debug, Clone)]
pub struct Reject(pub String);

impl From<&str> for Reject {
    fn from(s: &str) -> Reject {
        Reject(s.to_owned())
    }
}

impl From<String> for Reject {
    fn from(s: String) -> Reject {
        Reject(s)
    }
}

/// The per-property RNG and bookkeeping handle strategies draw from.
pub struct TestRunner {
    rng: StdRng,
    max_local_rejects: u32,
}

impl TestRunner {
    /// Builds a runner. Deterministic unless `PROPTEST_SEED` is set.
    pub fn new(config: &ProptestConfig) -> TestRunner {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            max_local_rejects: config.max_local_rejects.max(1),
        }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// How many strategy-level rejections (e.g. `prop_filter` misses) a
    /// single draw may absorb before giving up.
    pub fn max_local_rejects(&self) -> u32 {
        self.max_local_rejects
    }
}

/// A generator of values of type `Value`.
///
/// Object-safe core (`new_value`) plus `Sized` combinators, so
/// `Box<dyn Strategy<Value = T>>` works for [`prop_oneof!`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value, or rejects (caller retries).
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject>;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; rejects after repeated failures.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject> {
        (**self).new_value(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject> {
        (**self).new_value(runner)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> Result<O, Reject> {
        self.inner.new_value(runner).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S::Value, Reject> {
        for _ in 0..runner.max_local_rejects() {
            let v = self.inner.new_value(runner)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(format!(
            "prop_filter exhausted retries: {}",
            self.whence
        )))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S2::Value, Reject> {
        let seed = self.inner.new_value(runner)?;
        (self.f)(seed).new_value(runner)
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`] backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> Result<T, Reject> {
        let idx = runner.rng().gen_range(0..self.arms.len());
        self.arms[idx].new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Reject> {
                Ok(runner.rng().gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Reject> {
                Ok(runner.rng().gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> Result<f64, Reject> {
        Ok(runner.rng().gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reject> {
                Ok(($(self.$i.new_value(runner)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Reject, Strategy, TestRunner};
    use rand::Rng;

    /// Inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Result<Vec<S::Value>, Reject> {
            let len = runner.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.new_value(runner)).collect()
        }
    }
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Reject, Strategy, TestRunner, Union,
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Rejects the current case unless `cond` holds (retried, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Reject::from(stringify!($cond)));
        }
    };
}

/// Asserts within a property (fails the test; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __runner = $crate::TestRunner::new(&__config);
                let mut __accepted: u32 = 0;
                let mut __rejected: u64 = 0;
                while __accepted < __config.cases {
                    if __rejected > __config.max_global_rejects as u64 {
                        panic!(
                            "proptest: too many global rejects ({} of {} cases ran)",
                            __accepted, __config.cases
                        );
                    }
                    let __vals = ( $(
                        match $crate::Strategy::new_value(&($strat), &mut __runner) {
                            ::std::result::Result::Ok(v) => v,
                            ::std::result::Result::Err(_) => {
                                __rejected += 1;
                                continue;
                            }
                        }
                    ),* ,);
                    // Captured up front so a failing case can report the
                    // exact counterexample (there is no shrinking).
                    let __repr = ::std::format!("{:?}", __vals);
                    let ( $($pat),* ,) = __vals;
                    let __outcome: ::std::result::Result<(), $crate::Reject> =
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })) {
                            ::std::result::Result::Ok(r) => r,
                            ::std::result::Result::Err(payload) => {
                                ::std::eprintln!(
                                    "proptest: property `{}` failed for inputs {} (case {} of {})",
                                    stringify!($name), __repr, __accepted + 1, __config.cases
                                );
                                ::std::panic::resume_unwind(payload);
                            }
                        };
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(_) => __rejected += 1,
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::{collection, ProptestConfig, Strategy, TestRunner};

    #[test]
    fn filter_respects_local_reject_cap() {
        let cfg = ProptestConfig {
            max_local_rejects: 3,
            ..ProptestConfig::default()
        };
        let mut runner = TestRunner::new(&cfg);
        let strat = (0u32..10).prop_filter("impossible", |_| false);
        assert!(strat.new_value(&mut runner).is_err());
    }

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut runner = TestRunner::new(&ProptestConfig::default());
        let strat = collection::vec(0u32..5, 2..=4);
        for _ in 0..100 {
            let v = strat.new_value(&mut runner).unwrap();
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut runner = TestRunner::new(&ProptestConfig::default());
        let strat = crate::prop_oneof![0u32..1, 10u32..11];
        let mut seen = [false, false];
        for _ in 0..200 {
            match strat.new_value(&mut runner).unwrap() {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected draw {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}
