//! Vendored, offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with a
//! hand-rolled token parser (the real crate's `syn`/`quote` dependencies are
//! unavailable offline). Supports exactly the shapes this workspace uses:
//!
//! * named-field structs, tuple structs, unit structs (no generics);
//! * enums with unit, tuple, and struct variants, externally tagged;
//! * `#[serde(transparent)]` on newtype structs (single-field tuple structs
//!   get newtype semantics regardless, matching serde);
//! * `#[serde(skip)]` and `#[serde(default)]` on named fields.
//!
//! Anything else panics at compile time with a clear message rather than
//! silently producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Serde attributes found while skipping `#[...]` groups.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    transparent: bool,
}

/// Consumes leading attributes from `tokens[*pos..]`, collecting any
/// `#[serde(...)]` flags.
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let TokenTree::Group(g) = &tokens[*pos + 1] else {
                    panic!("serde_derive: `#` not followed by an attribute group");
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "skip" | "skip_serializing" => attrs.skip = true,
                                        "default" => attrs.default = true,
                                        "transparent" => attrs.transparent = true,
                                        other => panic!(
                                            "serde_derive: unsupported serde attribute `{other}` \
                                             (vendored stub supports transparent/skip/default)"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    attrs
}

/// Skips an optional `pub` / `pub(...)` visibility.
fn eat_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Counts the fields of a tuple-struct/tuple-variant parenthesized group by
/// counting top-level commas (angle-bracket depth tracked for generic types).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut trailing_comma = false;
    let mut prev_minus = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                // The '>' of a '->' (fn-pointer return type) is not an
                // angle-bracket close.
                '>' if !prev_minus => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                    prev_minus = false;
                    continue;
                }
                _ => {}
            }
            prev_minus = p.as_char() == '-';
        } else {
            prev_minus = false;
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = eat_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        eat_vis(&tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive: expected field name, got {:?}", tokens[pos]);
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle depth 0. The
        // '>' of a '->' (fn-pointer return type) is not an angle close.
        let mut depth = 0i32;
        let mut prev_minus = false;
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_minus => depth -= 1,
                    ',' if depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
                prev_minus = p.as_char() == '-';
            } else {
                prev_minus = false;
            }
            pos += 1;
        }
        fields.push(Field {
            name: name.to_string(),
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        eat_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive: expected variant name, got {:?}", tokens[pos]);
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip discriminant (`= expr`) if present, then the separating comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container_attrs = eat_attrs(&tokens, &mut pos);
    eat_vis(&tokens, &mut pos);

    let TokenTree::Ident(kw) = &tokens[pos] else {
        panic!(
            "serde_derive: expected `struct` or `enum`, got {:?}",
            tokens[pos]
        );
    };
    let kw = kw.to_string();
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        panic!("serde_derive: expected type name, got {:?}", tokens[pos]);
    };
    let name = name.to_string();
    pos += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive: vendored stub does not support generic type `{name}`");
        }
    }

    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unsupported struct body {other:?}"),
            };
            // `transparent` only changes behaviour for newtype structs, and
            // single-field tuple structs already get newtype semantics.
            let _ = container_attrs.transparent;
            Input::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(pos) else {
                panic!("serde_derive: expected enum body");
            };
            Input::Enum {
                name,
                variants: parse_variants(g),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(
                        "        let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in fs.iter().filter(|f| !f.skip) {
                        out.push_str(&format!(
                            "        obj.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                            f.name
                        ));
                    }
                    out.push_str("        ::serde::Value::Object(obj)\n");
                }
                Fields::Tuple(1) => {
                    out.push_str("        ::serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    out.push_str(&format!(
                        "        ::serde::Value::Array(::std::vec![{}])\n",
                        items.join(", ")
                    ));
                }
                Fields::Unit => out.push_str("        ::serde::Value::Null\n"),
            }
            out.push_str("    }\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut body = String::from(
                            "{ let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new(); ",
                        );
                        for f in fs.iter().filter(|f| !f.skip) {
                            body.push_str(&format!(
                                "obj.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))); ",
                                f.name
                            ));
                        }
                        body.push_str(&format!(
                            "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(obj))]) }}"
                        ));
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {} }} => {body},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

/// Expression deserializing named field `f` from object value expr `src`.
fn named_field_expr(f: &Field, src: &str, container: &str) -> String {
    if f.skip {
        return "::std::default::Default::default()".to_string();
    }
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{}` in {container}\"))",
            f.name
        )
    };
    format!(
        "match {src}.get(\"{0}\") {{ ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, ::std::option::Option::None => {missing} }}",
        f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(&format!(
                        "        if v.as_object().is_none() {{ return ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\")); }}\n"
                    ));
                    out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
                    for f in fs {
                        out.push_str(&format!(
                            "            {}: {},\n",
                            f.name,
                            named_field_expr(f, "v", name)
                        ));
                    }
                    out.push_str("        })\n");
                }
                Fields::Tuple(1) => {
                    out.push_str(&format!(
                        "        ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "        let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n        if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n"
                    ));
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    out.push_str(&format!(
                        "        ::std::result::Result::Ok({name}({}))\n",
                        items.join(", ")
                    ));
                }
                Fields::Unit => {
                    out.push_str(&format!("        ::std::result::Result::Ok({name})\n"));
                }
            }
            out.push_str("    }\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            // Unit variants arrive as bare strings.
            out.push_str("        if let ::std::option::Option::Some(s) = v.as_str() {\n            return match s {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!(
                        "                \"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            out.push_str(&format!(
                "                other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown {name} variant {{other}}\"))),\n            }};\n        }}\n"
            ));
            // Data variants arrive as single-key objects.
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => out.push_str(&format!(
                        "        if let ::std::option::Option::Some(x) = v.get(\"{vn}\") {{\n            return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(x)?));\n        }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "        if let ::std::option::Option::Some(x) = v.get(\"{vn}\") {{\n            let arr = x.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n            if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}::{vn}\")); }}\n            return ::std::result::Result::Ok({name}::{vn}({}));\n        }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut body = String::new();
                        for f in fs {
                            body.push_str(&format!(
                                "                {}: {},\n",
                                f.name,
                                named_field_expr(f, "x", &format!("{name}::{vn}"))
                            ));
                        }
                        out.push_str(&format!(
                            "        if let ::std::option::Option::Some(x) = v.get(\"{vn}\") {{\n            return ::std::result::Result::Ok({name}::{vn} {{\n{body}            }});\n        }}\n"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "        ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"cannot deserialize {name} from {{v:?}}\")))\n    }}\n}}\n"
            ));
        }
    }
    out
}
